//! [`ArtifactStore`]: the crash-safe, content-addressed on-disk tier.
//!
//! ## Layout
//!
//! ```text
//! <root>/objects/<fingerprint:016x>.mcca        one artifact bundle
//! <root>/objects/<fingerprint:016x>.mcca.tmp    in-flight write (swept on open)
//! <root>/quarantine/<fingerprint:016x>.mcca     failed validation, kept for forensics
//! ```
//!
//! ## Write protocol (crash-safe)
//!
//! 1. write the encoded bundle to `<key>.mcca.tmp`;
//! 2. `fsync` the temp file;
//! 3. `rename` it over `<key>.mcca` (atomic on POSIX);
//! 4. `fsync` the objects directory (makes the rename durable).
//!
//! A crash at any point leaves either the old object, no object, or a
//! stale `.tmp` — never a half-written object under the final name.
//! [`ArtifactStore::open`] sweeps stale temp files (self-healing), and
//! every load CRC-validates before serving, so even a lying disk (short
//! write reported as success, bit rot) produces a quarantine + clean
//! miss rather than garbage artifacts.
//!
//! ## Failure policy
//!
//! * `ErrorKind::Interrupted` → bounded retry with linear backoff;
//! * validation failure → quarantine the blob, count it, report a miss;
//! * any other I/O error → flip to **degraded memory-only mode**: all
//!   further disk traffic short-circuits, the engine keeps serving from
//!   the in-memory tier, and `mcc_store_degraded_total` records the
//!   transition. Degradation is one-way for the store's lifetime — a
//!   disk that failed once is not trusted again until reopen.

use crate::format::{decode, encode, FormatError};
use crate::io::{is_kill, StoreIo, SystemIo};
use mcc::SchemaArtifacts;
use mcc_obs::CounterKind;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How many times an `Interrupted` primitive is retried before the
/// error is treated as persistent.
const MAX_RETRIES: u32 = 3;

/// Backoff base between retries (linear: 1×, 2×, 3×).
const BACKOFF: Duration = Duration::from_millis(1);

/// File extension of a valid object.
const OBJ_EXT: &str = "mcca";

/// Extension suffix of an in-flight temp file.
const TMP_SUFFIX: &str = ".tmp";

/// A point-in-time copy of the store's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Bundles served from disk (valid load).
    pub hits: u64,
    /// Lookups that found no valid object (absent or quarantined).
    pub misses: u64,
    /// Blobs moved to quarantine after failing validation.
    pub quarantined: u64,
    /// Bundles durably written.
    pub stores: u64,
    /// Whether the store is in degraded memory-only mode.
    pub degraded: bool,
}

/// The crash-safe content-addressed artifact store. Keys are schema
/// fingerprints (`RelationalSchema::fingerprint`); values are encoded
/// [`SchemaArtifacts`] bundles. Immutable by key: equal fingerprints
/// mean equal content, so `store` never needs read-modify-write.
pub struct ArtifactStore {
    objects: PathBuf,
    quarantine: PathBuf,
    io: Arc<dyn StoreIo>,
    degraded: AtomicBool,
    hits: AtomicU64,
    misses: AtomicU64,
    quarantined: AtomicU64,
    stores: AtomicU64,
}

impl std::fmt::Debug for ArtifactStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactStore")
            .field("objects", &self.objects)
            .field("degraded", &self.degraded.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl ArtifactStore {
    /// Opens (creating if needed) the store rooted at `root`, using the
    /// production filesystem.
    ///
    /// Never fails hard: if the directories cannot be created the store
    /// opens directly in degraded memory-only mode — callers keep one
    /// code path and the condition is visible via [`StoreStats::degraded`].
    pub fn open(root: impl Into<PathBuf>) -> ArtifactStore {
        ArtifactStore::open_with_io(root, Arc::new(SystemIo))
    }

    /// [`ArtifactStore::open`] with an explicit I/O implementation —
    /// the seam the chaos suite drives.
    pub fn open_with_io(root: impl Into<PathBuf>, io: Arc<dyn StoreIo>) -> ArtifactStore {
        let root = root.into();
        let store = ArtifactStore {
            objects: root.join("objects"),
            quarantine: root.join("quarantine"),
            io,
            degraded: AtomicBool::new(false),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            stores: AtomicU64::new(0),
        };
        let ready = store
            .retrying(|io| io.create_dir_all(&store.objects))
            .and_then(|_| store.retrying(|io| io.create_dir_all(&store.quarantine)));
        match ready {
            Ok(()) => store.sweep_stale_tmp(),
            Err(e) => store.degrade(&e),
        }
        store
    }

    /// Self-healing: removes temp files abandoned by a crash mid-write.
    /// A stale `.tmp` is the *expected* residue of the write protocol
    /// dying before its rename; sweeping it on open restores the
    /// invariant that `objects/` holds only complete, renamed blobs.
    fn sweep_stale_tmp(&self) {
        let entries = match self.retrying(|io| io.list(&self.objects)) {
            Ok(entries) => entries,
            Err(e) => return self.degrade(&e),
        };
        for path in entries {
            let stale = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(TMP_SUFFIX));
            if stale {
                // Best-effort: a sweep failure is not worth degrading
                // over — the file will be retried next open.
                let _ = self.retrying(|io| io.remove(&path));
            }
        }
    }

    /// The object path for a fingerprint.
    fn object_path(&self, fingerprint: u64) -> PathBuf {
        self.objects.join(format!("{fingerprint:016x}.{OBJ_EXT}"))
    }

    fn tmp_path(&self, fingerprint: u64) -> PathBuf {
        self.objects
            .join(format!("{fingerprint:016x}.{OBJ_EXT}{TMP_SUFFIX}"))
    }

    fn quarantine_path(&self, fingerprint: u64) -> PathBuf {
        self.quarantine
            .join(format!("{fingerprint:016x}.{OBJ_EXT}"))
    }

    /// Runs a primitive with bounded retry on `Interrupted`. Kill
    /// signals (simulated process death) are never retried.
    fn retrying<T>(&self, op: impl Fn(&dyn StoreIo) -> io::Result<T>) -> io::Result<T> {
        let mut attempt = 0;
        loop {
            match op(self.io.as_ref()) {
                Ok(v) => return Ok(v),
                Err(e) if is_kill(&e) => return Err(e),
                Err(e) if e.kind() == io::ErrorKind::Interrupted && attempt < MAX_RETRIES => {
                    attempt += 1;
                    std::thread::sleep(BACKOFF * attempt);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Flips to degraded memory-only mode (idempotent; counted once).
    fn degrade(&self, _cause: &io::Error) {
        if !self.degraded.swap(true, Ordering::SeqCst) {
            mcc_obs::incr(CounterKind::StoreDegraded, 1);
        }
    }

    /// Whether the store has given up on the disk for this lifetime.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst)
    }

    /// Loads and validates the bundle stored under `fingerprint`.
    ///
    /// `Some` is returned only for a blob that passed every CRC, parsed,
    /// and rebuilt a coherent [`SchemaArtifacts`] — the caller can trust
    /// it as if freshly built. `None` means a clean miss: absent,
    /// quarantined just now, degraded mode, or a simulated crash.
    pub fn load(&self, fingerprint: u64) -> Option<SchemaArtifacts> {
        if self.is_degraded() {
            self.miss();
            return None;
        }
        let path = self.object_path(fingerprint);
        let bytes = match self.retrying(|io| io.read(&path)) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.miss();
                return None;
            }
            Err(e) => {
                if !is_kill(&e) {
                    self.degrade(&e);
                }
                self.miss();
                return None;
            }
        };
        match decode(&bytes, Some(fingerprint)) {
            Ok((_, artifacts)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                mcc_obs::incr(CounterKind::StoreHit, 1);
                Some(artifacts)
            }
            Err(why) => {
                self.quarantine_object(fingerprint, &path, &why);
                self.miss();
                None
            }
        }
    }

    fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        mcc_obs::incr(CounterKind::StoreMiss, 1);
    }

    /// Moves a blob that failed validation out of the serving path. The
    /// object name disappears (so subsequent loads miss cheaply) and the
    /// bytes are preserved under `quarantine/` for forensics.
    fn quarantine_object(&self, fingerprint: u64, path: &Path, _why: &FormatError) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        mcc_obs::incr(CounterKind::StoreQuarantine, 1);
        let dest = self.quarantine_path(fingerprint);
        if self.retrying(|io| io.rename(path, &dest)).is_err() {
            // The rename failed: at minimum get the corrupt blob out of
            // the serving path. Best-effort on an already-sick disk.
            let _ = self.retrying(|io| io.remove(path));
        }
    }

    /// Durably writes the bundle under `fingerprint` using the atomic
    /// temp-file protocol. Returns `true` on success. On persistent
    /// failure the store degrades to memory-only and returns `false`;
    /// on a simulated crash (fault injection) it returns `false` with
    /// the disk left exactly as the crash would leave it.
    pub fn store(&self, fingerprint: u64, artifacts: &SchemaArtifacts) -> bool {
        if self.is_degraded() {
            return false;
        }
        let bytes = encode(fingerprint, artifacts);
        let tmp = self.tmp_path(fingerprint);
        let path = self.object_path(fingerprint);
        let protocol = self
            .retrying(|io| io.create_and_write(&tmp, &bytes))
            .and_then(|_| self.retrying(|io| io.sync_file(&tmp)))
            .and_then(|_| self.retrying(|io| io.rename(&tmp, &path)))
            .and_then(|_| self.retrying(|io| io.sync_dir(&self.objects)));
        match protocol {
            Ok(()) => {
                self.stores.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(e) if is_kill(&e) => {
                // Simulated process death: no cleanup, no degradation —
                // the "next process" (a reopened store) must recover.
                false
            }
            Err(e) => {
                let _ = self.retrying(|io| io.remove(&tmp));
                self.degrade(&e);
                false
            }
        }
    }

    /// Removes the object stored under `fingerprint` (used by cache
    /// invalidation so a forced rebuild is not short-circuited by the
    /// disk tier). Absent objects are fine; other failures degrade.
    pub fn remove(&self, fingerprint: u64) -> bool {
        if self.is_degraded() {
            return false;
        }
        let path = self.object_path(fingerprint);
        match self.retrying(|io| io.remove(&path)) {
            Ok(()) => true,
            Err(e) if e.kind() == io::ErrorKind::NotFound => true,
            Err(e) => {
                if !is_kill(&e) {
                    self.degrade(&e);
                }
                false
            }
        }
    }

    /// Whether a (possibly invalid) object exists under `fingerprint`.
    /// Purely observational — serving always goes through [`load`].
    ///
    /// [`load`]: ArtifactStore::load
    pub fn contains(&self, fingerprint: u64) -> bool {
        if self.is_degraded() {
            return false;
        }
        let path = self.object_path(fingerprint);
        self.retrying(|io| io.list(&self.objects))
            .map(|entries| entries.contains(&path))
            .unwrap_or(false)
    }

    /// A consistent-enough snapshot of the store's counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            degraded: self.is_degraded(),
        }
    }
}
