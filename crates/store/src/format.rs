//! The versioned, checksummed binary format for [`SchemaArtifacts`](mcc::SchemaArtifacts).
//!
//! ## Layout (format version 1, all integers little-endian)
//!
//! ```text
//! header   magic  b"MCCSTORE"                    8 bytes
//!          version  u32                          4
//!          fingerprint  u64 (schema FNV-1a)      8
//!          section_count  u32                    4
//!          header_crc  u32 (CRC-32 of the 24
//!            bytes above)                        4
//! section  tag  u32                              4
//!   (×N)   len  u64 (payload bytes)              8
//!          payload                               len
//!          payload_crc  u32 (CRC-32 of payload)  4
//! ```
//!
//! Sections appear in ascending tag order. `GRAPH`, `CLASSIFICATION`,
//! and `ELIMINATION` are mandatory; the two Lemma 1 sections are present
//! exactly when the corresponding route is polynomial for the schema.
//! The side-swapped graph of the `V1` route is **not** stored — it is
//! recomputed as `bipartite.swap_sides()` at decode (structural sharing:
//! the copy is derived data, and [`SchemaArtifacts::from_parts`](mcc::SchemaArtifacts::from_parts) verifies
//! the reconstruction).
//!
//! ## Integrity and versioning contract
//!
//! * Every section is independently CRC-checked **before** its payload
//!   is parsed; a flipped byte or truncated tail fails validation, never
//!   panics, and names the damaged section.
//! * The header echoes the schema fingerprint, so a file renamed over
//!   the wrong key is rejected (`FingerprintMismatch`) without parsing.
//! * Decoded parts pass through [`SchemaArtifacts::from_parts`](mcc::SchemaArtifacts::from_parts), so even
//!   a CRC-valid but internally inconsistent blob cannot build a bundle
//!   that panics a solver.
//! * `VERSION` bumps require a reader for every earlier version (the
//!   golden-file test in `tests/golden_v1.rs` decodes a checked-in v1
//!   blob and fails the build if a bump silently drops v1 support).
//!
//! Encoding is deterministic: equal bundles encode to identical bytes
//! (node order, `Graph::edges` order, and section order are all fixed),
//! which is what lets the chaos suite assert "byte-identical artifacts
//! or clean miss" after every injected fault.

use crate::crc::crc32;
use mcc::{ArtifactsError, SchemaArtifacts};
use mcc_chordality::BipartiteClassification;
use mcc_graph::{BipartiteGraph, GraphBuilder, NodeId, Side};
use mcc_hypergraph::{EdgeId, JoinTree};
use mcc_steiner::Lemma1Ordering;
use std::fmt;

/// The 8-byte file magic.
pub const MAGIC: [u8; 8] = *b"MCCSTORE";

/// The current format version. Bumping this without teaching
/// [`decode`] to still read every earlier version breaks the golden
/// fixture test — that is the migration contract.
pub const VERSION: u32 = 1;

/// Section tags, ascending in file order.
const TAG_GRAPH: u32 = 1;
const TAG_CLASSIFICATION: u32 = 2;
const TAG_ELIMINATION: u32 = 3;
const TAG_LEMMA1_V2: u32 = 4;
const TAG_LEMMA1_V1: u32 = 5;

/// Why a blob failed to validate or decode. Every variant is a *clean
/// rejection*: the store quarantines the file and reports a miss; no
/// variant is ever surfaced as artifacts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// The file is shorter than the fixed header.
    TruncatedHeader,
    /// The magic bytes are not `MCCSTORE`.
    BadMagic,
    /// The header CRC does not match (torn write inside the header).
    HeaderCrc,
    /// The version is one this reader does not understand.
    UnsupportedVersion(u32),
    /// The header's fingerprint echo disagrees with the key the caller
    /// looked up — a misfiled or forged object.
    FingerprintMismatch {
        /// The fingerprint the caller asked for.
        expected: u64,
        /// The fingerprint stored in the header.
        found: u64,
    },
    /// A section extends past the end of the file (torn tail).
    TruncatedSection(u32),
    /// A section's payload CRC does not match (bit rot / short write).
    SectionCrc(u32),
    /// The section structure is wrong: out-of-order, duplicated,
    /// unknown, or a mandatory section is missing.
    SectionTable(&'static str),
    /// A payload parsed but its contents are malformed.
    Malformed(&'static str),
    /// The decoded parts failed [`SchemaArtifacts::from_parts`]
    /// coherence validation.
    Artifacts(ArtifactsError),
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::TruncatedHeader => write!(f, "file shorter than the header"),
            FormatError::BadMagic => write!(f, "bad magic (not an mcc-store object)"),
            FormatError::HeaderCrc => write!(f, "header checksum mismatch"),
            FormatError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            FormatError::FingerprintMismatch { expected, found } => write!(
                f,
                "fingerprint mismatch: expected {expected:016x}, file says {found:016x}"
            ),
            FormatError::TruncatedSection(tag) => write!(f, "section {tag} truncated"),
            FormatError::SectionCrc(tag) => write!(f, "section {tag} checksum mismatch"),
            FormatError::SectionTable(why) => write!(f, "bad section table: {why}"),
            FormatError::Malformed(why) => write!(f, "malformed payload: {why}"),
            FormatError::Artifacts(e) => write!(f, "incoherent bundle: {e}"),
        }
    }
}

impl std::error::Error for FormatError {}

impl From<ArtifactsError> for FormatError {
    fn from(e: ArtifactsError) -> Self {
        FormatError::Artifacts(e)
    }
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_section(out: &mut Vec<u8>, tag: u32, payload: &[u8]) {
    put_u32(out, tag);
    put_u64(out, payload.len() as u64);
    out.extend_from_slice(payload);
    put_u32(out, crc32(payload));
}

fn graph_payload(bg: &BipartiteGraph) -> Vec<u8> {
    let g = bg.graph();
    let mut p = Vec::new();
    put_u32(&mut p, g.node_count() as u32);
    for v in g.nodes() {
        p.push(match bg.side(v) {
            Side::V1 => 0,
            Side::V2 => 1,
        });
        let label = g.label(v).as_bytes();
        put_u32(&mut p, label.len() as u32);
        p.extend_from_slice(label);
    }
    put_u32(&mut p, g.edge_count() as u32);
    for (a, b) in g.edges() {
        put_u32(&mut p, a.0);
        put_u32(&mut p, b.0);
    }
    p
}

fn classification_payload(c: &BipartiteClassification) -> Vec<u8> {
    vec![
        c.four_one as u8,
        c.six_two as u8,
        c.six_one as u8,
        c.v1_chordal as u8,
        c.v1_conformal as u8,
        c.v2_chordal as u8,
        c.v2_conformal as u8,
    ]
}

fn node_list_payload(nodes: &[NodeId]) -> Vec<u8> {
    let mut p = Vec::new();
    put_u32(&mut p, nodes.len() as u32);
    for v in nodes {
        put_u32(&mut p, v.0);
    }
    p
}

fn lemma1_payload(l1: &Lemma1Ordering) -> Vec<u8> {
    let mut p = node_list_payload(&l1.order);
    put_u32(&mut p, l1.join_tree.order.len() as u32);
    for e in &l1.join_tree.order {
        put_u32(&mut p, e.0);
    }
    for parent in &l1.join_tree.parent {
        put_u32(&mut p, parent.map_or(u32::MAX, |e| e.0));
    }
    p
}

/// Encodes `artifacts` under content key `fingerprint` into the v1
/// on-disk representation. Deterministic: equal bundles (and equal
/// fingerprints) produce identical bytes.
pub fn encode(fingerprint: u64, artifacts: &SchemaArtifacts) -> Vec<u8> {
    let mut sections: Vec<(u32, Vec<u8>)> = vec![
        (TAG_GRAPH, graph_payload(artifacts.bipartite())),
        (
            TAG_CLASSIFICATION,
            classification_payload(artifacts.classification()),
        ),
        (
            TAG_ELIMINATION,
            node_list_payload(artifacts.elimination_order()),
        ),
    ];
    if let Some(l1) = artifacts.lemma1(Side::V2) {
        sections.push((TAG_LEMMA1_V2, lemma1_payload(l1)));
    }
    if let Some(l1) = artifacts.lemma1(Side::V1) {
        sections.push((TAG_LEMMA1_V1, lemma1_payload(l1)));
    }

    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    put_u32(&mut out, VERSION);
    put_u64(&mut out, fingerprint);
    put_u32(&mut out, sections.len() as u32);
    let header_crc = crc32(&out);
    put_u32(&mut out, header_crc);
    for (tag, payload) in &sections {
        push_section(&mut out, *tag, payload);
    }
    out
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// A bounds-checked little-endian reader over one section payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, at: 0 }
    }

    fn u8(&mut self) -> Result<u8, FormatError> {
        let b = *self
            .bytes
            .get(self.at)
            .ok_or(FormatError::Malformed("payload ends early"))?;
        self.at += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, FormatError> {
        let end = self
            .at
            .checked_add(4)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(FormatError::Malformed("payload ends early"))?;
        let mut buf = [0u8; 4];
        buf.copy_from_slice(&self.bytes[self.at..end]);
        self.at = end;
        Ok(u32::from_le_bytes(buf))
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], FormatError> {
        let end = self
            .at
            .checked_add(len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(FormatError::Malformed("payload ends early"))?;
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn finish(&self) -> Result<(), FormatError> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(FormatError::Malformed("trailing bytes in payload"))
        }
    }
}

/// A `u32` count that is about to drive an allocation: reject counts
/// that could not possibly fit in the remaining payload, so a corrupt
/// length cannot balloon memory before the per-element parsing fails.
fn checked_count(
    cur: &Cursor<'_>,
    count: u32,
    min_bytes_each: usize,
) -> Result<usize, FormatError> {
    let count = count as usize;
    let remaining = cur.bytes.len() - cur.at;
    if count.saturating_mul(min_bytes_each) > remaining {
        return Err(FormatError::Malformed("count exceeds payload size"));
    }
    Ok(count)
}

fn parse_graph(payload: &[u8]) -> Result<BipartiteGraph, FormatError> {
    let mut cur = Cursor::new(payload);
    let raw_n = cur.u32()?;
    let n = checked_count(&cur, raw_n, 5)?;
    let mut builder = GraphBuilder::with_nodes(0);
    let mut side = Vec::with_capacity(n);
    for _ in 0..n {
        side.push(match cur.u8()? {
            0 => Side::V1,
            1 => Side::V2,
            _ => return Err(FormatError::Malformed("side byte out of range")),
        });
        let len = cur.u32()? as usize;
        let label = std::str::from_utf8(cur.take(len)?)
            .map_err(|_| FormatError::Malformed("label is not UTF-8"))?;
        builder.add_node(label);
    }
    let raw_m = cur.u32()?;
    let m = checked_count(&cur, raw_m, 8)?;
    for _ in 0..m {
        let a = cur.u32()? as usize;
        let b = cur.u32()? as usize;
        if a >= n || b >= n {
            return Err(FormatError::Malformed("edge endpoint out of range"));
        }
        builder
            .add_edge(NodeId::from_index(a), NodeId::from_index(b))
            .map_err(|_| FormatError::Malformed("invalid edge"))?;
    }
    cur.finish()?;
    BipartiteGraph::new(builder.build(), side)
        .map_err(|_| FormatError::Malformed("edge joins two same-side nodes"))
}

fn parse_classification(payload: &[u8]) -> Result<BipartiteClassification, FormatError> {
    let mut cur = Cursor::new(payload);
    let mut flag = || -> Result<bool, FormatError> {
        match cur.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(FormatError::Malformed("classification flag out of range")),
        }
    };
    let c = BipartiteClassification {
        four_one: flag()?,
        six_two: flag()?,
        six_one: flag()?,
        v1_chordal: flag()?,
        v1_conformal: flag()?,
        v2_chordal: flag()?,
        v2_conformal: flag()?,
    };
    cur.finish()?;
    Ok(c)
}

fn parse_node_list(cur: &mut Cursor<'_>) -> Result<Vec<NodeId>, FormatError> {
    let raw = cur.u32()?;
    let count = checked_count(cur, raw, 4)?;
    let mut nodes = Vec::with_capacity(count);
    for _ in 0..count {
        nodes.push(NodeId(cur.u32()?));
    }
    Ok(nodes)
}

fn parse_elimination(payload: &[u8]) -> Result<Vec<NodeId>, FormatError> {
    let mut cur = Cursor::new(payload);
    let nodes = parse_node_list(&mut cur)?;
    cur.finish()?;
    Ok(nodes)
}

fn parse_lemma1(payload: &[u8]) -> Result<Lemma1Ordering, FormatError> {
    let mut cur = Cursor::new(payload);
    let order = parse_node_list(&mut cur)?;
    let raw_m = cur.u32()?;
    let m = checked_count(&cur, raw_m, 8)?;
    let mut jt_order = Vec::with_capacity(m);
    for _ in 0..m {
        jt_order.push(EdgeId(cur.u32()?));
    }
    let mut parent = Vec::with_capacity(m);
    for _ in 0..m {
        let raw = cur.u32()?;
        parent.push(if raw == u32::MAX {
            None
        } else {
            Some(EdgeId(raw))
        });
    }
    cur.finish()?;
    Ok(Lemma1Ordering {
        order,
        join_tree: JoinTree {
            order: jt_order,
            parent,
        },
    })
}

/// Validates and decodes one on-disk object.
///
/// `expected_fingerprint` is the content key the caller looked the file
/// up under; pass `None` to accept whatever the header says (the
/// golden-fixture test does). Validation order: header magic/CRC →
/// version → fingerprint echo → per-section CRC → payload parse →
/// [`SchemaArtifacts::from_parts`] coherence. The returned fingerprint
/// is the header's echo.
pub fn decode(
    bytes: &[u8],
    expected_fingerprint: Option<u64>,
) -> Result<(u64, SchemaArtifacts), FormatError> {
    const HEADER_LEN: usize = 8 + 4 + 8 + 4 + 4;
    if bytes.len() < HEADER_LEN {
        return Err(FormatError::TruncatedHeader);
    }
    if bytes[..8] != MAGIC {
        return Err(FormatError::BadMagic);
    }
    let u32_at = |at: usize| {
        let mut buf = [0u8; 4];
        buf.copy_from_slice(&bytes[at..at + 4]);
        u32::from_le_bytes(buf)
    };
    let version = u32_at(8);
    let fingerprint = {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&bytes[12..20]);
        u64::from_le_bytes(buf)
    };
    let section_count = u32_at(20);
    let header_crc = u32_at(24);
    if header_crc != crc32(&bytes[..HEADER_LEN - 4]) {
        return Err(FormatError::HeaderCrc);
    }
    if version != VERSION {
        return Err(FormatError::UnsupportedVersion(version));
    }
    if let Some(expected) = expected_fingerprint {
        if expected != fingerprint {
            return Err(FormatError::FingerprintMismatch {
                expected,
                found: fingerprint,
            });
        }
    }

    // Walk the section table, CRC-checking each payload before parsing.
    let mut at = HEADER_LEN;
    let mut bipartite = None;
    let mut classification = None;
    let mut elimination = None;
    let mut lemma1_v2 = None;
    let mut lemma1_v1 = None;
    let mut last_tag = 0u32;
    for _ in 0..section_count {
        if at + 12 > bytes.len() {
            return Err(FormatError::TruncatedSection(last_tag));
        }
        let tag = u32_at(at);
        let len = {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[at + 4..at + 12]);
            u64::from_le_bytes(buf)
        };
        let len = usize::try_from(len).map_err(|_| FormatError::TruncatedSection(tag))?;
        let payload_at = at + 12;
        let crc_at = payload_at
            .checked_add(len)
            .filter(|&e| e + 4 <= bytes.len())
            .ok_or(FormatError::TruncatedSection(tag))?;
        let payload = &bytes[payload_at..crc_at];
        if u32_at(crc_at) != crc32(payload) {
            return Err(FormatError::SectionCrc(tag));
        }
        if tag <= last_tag {
            return Err(FormatError::SectionTable("tags not strictly ascending"));
        }
        last_tag = tag;
        match tag {
            TAG_GRAPH => bipartite = Some(parse_graph(payload)?),
            TAG_CLASSIFICATION => classification = Some(parse_classification(payload)?),
            TAG_ELIMINATION => elimination = Some(parse_elimination(payload)?),
            TAG_LEMMA1_V2 => lemma1_v2 = Some(parse_lemma1(payload)?),
            TAG_LEMMA1_V1 => lemma1_v1 = Some(parse_lemma1(payload)?),
            _ => return Err(FormatError::SectionTable("unknown section tag")),
        }
        at = crc_at + 4;
    }
    if at != bytes.len() {
        return Err(FormatError::SectionTable(
            "trailing bytes after last section",
        ));
    }
    let bipartite = bipartite.ok_or(FormatError::SectionTable("missing graph section"))?;
    let classification =
        classification.ok_or(FormatError::SectionTable("missing classification section"))?;
    let elimination =
        elimination.ok_or(FormatError::SectionTable("missing elimination section"))?;

    // The swapped copy is derived data: recompute it (structural
    // sharing), present exactly when the V1 ordering is.
    let swapped = lemma1_v1.as_ref().map(|_| bipartite.swap_sides());
    let artifacts = SchemaArtifacts::from_parts(
        bipartite,
        classification,
        elimination,
        lemma1_v2,
        swapped,
        lemma1_v1,
    )?;
    Ok((fingerprint, artifacts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_graph::bipartite::bipartite_from_lists;

    fn six_two_artifacts() -> SchemaArtifacts {
        let bg = bipartite_from_lists(
            &["a", "b", "c"],
            &["R1", "R2"],
            &[(0, 0), (1, 0), (1, 1), (2, 1)],
        );
        SchemaArtifacts::build(bg)
    }

    fn off_class_artifacts() -> SchemaArtifacts {
        let bg = bipartite_from_lists(
            &["x1", "x2", "x3"],
            &["y1", "y2", "y3"],
            &[(0, 0), (1, 0), (1, 1), (2, 1), (2, 2), (0, 2)],
        );
        SchemaArtifacts::build(bg)
    }

    #[test]
    fn round_trip_is_identity_on_bytes() {
        for a in [six_two_artifacts(), off_class_artifacts()] {
            let bytes = encode(42, &a);
            let (fp, decoded) = decode(&bytes, Some(42)).expect("own encoding decodes");
            assert_eq!(fp, 42);
            assert_eq!(decoded.bipartite(), a.bipartite());
            assert_eq!(decoded.classification(), a.classification());
            assert_eq!(decoded.elimination_order(), a.elimination_order());
            assert_eq!(
                decoded.lemma1(Side::V2).map(|l| &l.order),
                a.lemma1(Side::V2).map(|l| &l.order)
            );
            assert_eq!(decoded.swapped().is_some(), a.swapped().is_some());
            // Re-encoding the decoded bundle is byte-identical.
            assert_eq!(encode(42, &decoded), bytes);
        }
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let a = six_two_artifacts();
        let bytes = encode(7, &a);
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x01;
            assert!(
                decode(&corrupt, Some(7)).is_err(),
                "flipping byte {i} went undetected"
            );
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let a = six_two_artifacts();
        let bytes = encode(7, &a);
        for len in 0..bytes.len() {
            assert!(
                decode(&bytes[..len], Some(7)).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
    }

    #[test]
    fn wrong_fingerprint_is_rejected_without_parsing() {
        let bytes = encode(7, &six_two_artifacts());
        assert_eq!(
            decode(&bytes, Some(8)).err(),
            Some(FormatError::FingerprintMismatch {
                expected: 8,
                found: 7
            })
        );
        // With no expectation the same bytes decode fine.
        assert!(decode(&bytes, None).is_ok());
    }

    #[test]
    fn future_versions_are_rejected_cleanly() {
        let a = six_two_artifacts();
        let mut bytes = encode(7, &a);
        bytes[8..12].copy_from_slice(&2u32.to_le_bytes());
        // Patch the header CRC so only the version is "wrong".
        let crc = crc32(&bytes[..24]);
        bytes[24..28].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            decode(&bytes, Some(7)).err(),
            Some(FormatError::UnsupportedVersion(2))
        );
    }

    #[test]
    fn oversized_counts_do_not_balloon_memory() {
        // A graph section claiming u32::MAX nodes in a tiny payload must
        // be rejected by the count guard, not by an OOM.
        let a = six_two_artifacts();
        let mut bytes = encode(7, &a);
        // The graph payload starts right after the header + section
        // preamble (8+4+8+4+4 header, 4 tag, 8 len).
        let payload_at = 28 + 12;
        bytes[payload_at..payload_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        // Recompute the section CRC so the corruption reaches the parser.
        let err = decode_with_fixed_crc(&mut bytes, payload_at);
        assert_eq!(err, FormatError::Malformed("count exceeds payload size"));
    }

    /// Repairs the first section's CRC after a test mutation, then
    /// decodes — isolating parser-level defenses from the CRC layer.
    fn decode_with_fixed_crc(bytes: &mut [u8], payload_at: usize) -> FormatError {
        let len = {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[payload_at - 8..payload_at]);
            u64::from_le_bytes(buf) as usize
        };
        let crc = crc32(&bytes[payload_at..payload_at + len]);
        bytes[payload_at + len..payload_at + len + 4].copy_from_slice(&crc.to_le_bytes());
        decode(bytes, Some(7)).expect_err("mutated payload must not decode")
    }
}
