//! The store's I/O seam: a [`StoreIo`] trait covering exactly the
//! filesystem primitives the write-ahead protocol uses, the production
//! [`SystemIo`] implementation, and a deterministic [`FaultPlan`] that
//! can make any primitive fail (or lie) on demand.
//!
//! ## Why a seam
//!
//! The crash-safety claims of [`crate::ArtifactStore`] are only worth
//! anything if they are *tested against the failures they defend
//! against*: short writes, `EIO` on fsync, bit rot, torn renames, and a
//! process dying between any two protocol steps. None of those can be
//! provoked reliably through a real filesystem, so every primitive is
//! routed through this trait and the chaos suite injects faults at the
//! exact step it wants to break.
//!
//! ## The fault plan
//!
//! Mirroring the `TestClock` seam in `mcc-obs` (`crates/obs/src/clock.rs`),
//! the plan is process-global and **write-once**: [`install_fault_plan`]
//! succeeds at most once, before any store I/O fires. The plan's
//! *contents* stay mutable — tests re-arm it per scenario with
//! [`FaultPlan::arm`], scoped to a root directory so parallel tests with
//! separate tempdirs never see each other's faults. Production binaries
//! simply never install a plan; the per-op cost is then a single
//! `OnceLock` load.

use std::fs;
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock, PoisonError};

/// The filesystem primitives the store's write protocol is built from.
///
/// Each protocol step is its own method so a fault (or a simulated
/// crash) can land *between* any two steps — e.g. after the data write
/// but before the fsync, or after the rename but before the directory
/// sync.
pub trait StoreIo: Send + Sync {
    /// Reads the whole file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Creates (or truncates) `path` and writes `bytes` to it.
    fn create_and_write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Flushes the file at `path` to stable storage (`fsync`).
    fn sync_file(&self, path: &Path) -> io::Result<()>;
    /// Atomically renames `from` to `to` (same directory).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes the file at `path`.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// Lists the entries of `dir` (files only, unsorted).
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
    /// Creates `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Flushes the directory at `dir` (makes a rename durable).
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

/// Which primitive a [`Trigger`] is armed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// [`StoreIo::read`]
    Read,
    /// [`StoreIo::create_and_write`]
    CreateAndWrite,
    /// [`StoreIo::sync_file`]
    SyncFile,
    /// [`StoreIo::rename`]
    Rename,
    /// [`StoreIo::remove`]
    Remove,
    /// [`StoreIo::list`]
    List,
    /// [`StoreIo::create_dir_all`]
    CreateDirAll,
    /// [`StoreIo::sync_dir`]
    SyncDir,
}

/// What happens when a trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A hard I/O error (`ErrorKind::Other`) — the "disk is gone" class
    /// the store answers with degraded memory-only mode.
    Eio,
    /// A transient error (`ErrorKind::Interrupted`) — the class the
    /// store answers with bounded retry.
    Transient,
    /// The write *silently* persists only the first `n` bytes and
    /// reports success — a torn write that slips past the happy path
    /// and must be caught by CRC validation at load time.
    ShortWrite(usize),
    /// The write (or read) *silently* flips one byte at `offset mod
    /// len` and reports success — bit rot.
    FlipByte(usize),
    /// The process "dies" at this step: the primitive does **not** run
    /// and a [`KillSignal`]-carrying error is returned. The store
    /// recognises it and abandons the protocol without cleanup, leaving
    /// the on-disk state exactly as a real crash would.
    Kill,
    /// A torn rename: the destination appears but the source survives
    /// too (a non-atomic rename interrupted after the link step).
    TornRename,
}

/// One armed fault: after `skip` non-faulted calls of `op` under the
/// scope's root, the next such call misbehaves per `kind`. Each trigger
/// fires exactly once.
#[derive(Debug, Clone, Copy)]
pub struct Trigger {
    /// The primitive to sabotage.
    pub op: FaultOp,
    /// How many matching calls pass through unharmed first.
    pub skip: u32,
    /// The failure to inject.
    pub kind: FaultKind,
}

impl Trigger {
    /// A trigger that fires on the first matching call.
    pub fn first(op: FaultOp, kind: FaultKind) -> Self {
        Trigger { op, skip: 0, kind }
    }

    /// A trigger that fires on the `(skip + 1)`-th matching call.
    pub fn nth(op: FaultOp, skip: u32, kind: FaultKind) -> Self {
        Trigger { op, skip, kind }
    }
}

/// The distinguished payload of a [`FaultKind::Kill`] error. The store
/// checks for it with [`is_kill`] and, when present, stops mid-protocol
/// without any cleanup — simulating the process dying at that step.
#[derive(Debug)]
pub struct KillSignal;

impl std::fmt::Display for KillSignal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected kill-point: simulated process death")
    }
}

impl std::error::Error for KillSignal {}

/// Whether `err` is a simulated process death from [`FaultKind::Kill`].
pub fn is_kill(err: &io::Error) -> bool {
    err.get_ref().is_some_and(|inner| inner.is::<KillSignal>())
}

#[derive(Debug)]
struct ArmedTrigger {
    trigger: Trigger,
    fired: bool,
}

#[derive(Debug)]
struct Scope {
    root: PathBuf,
    triggers: Vec<ArmedTrigger>,
    fired_total: u64,
}

/// A deterministic fault schedule, scoped by store root directory.
///
/// Install once with [`install_fault_plan`]; re-arm per test scenario
/// with [`arm`](FaultPlan::arm). A primitive consults the plan with the
/// path it is about to touch; the first unfired matching trigger in the
/// path's scope decides its fate.
#[derive(Debug, Default)]
pub struct FaultPlan {
    scopes: Mutex<Vec<Scope>>,
}

impl FaultPlan {
    /// An empty plan (no scopes, nothing fires).
    pub const fn new() -> Self {
        FaultPlan {
            scopes: Mutex::new(Vec::new()),
        }
    }

    /// Arms (or replaces) the fault schedule for every path under
    /// `root`. Passing an empty trigger list disarms the scope.
    pub fn arm(&self, root: impl Into<PathBuf>, triggers: Vec<Trigger>) {
        let root = root.into();
        let mut scopes = self.scopes.lock().unwrap_or_else(PoisonError::into_inner);
        scopes.retain(|s| s.root != root);
        scopes.push(Scope {
            root,
            triggers: triggers
                .into_iter()
                .map(|trigger| ArmedTrigger {
                    trigger,
                    fired: false,
                })
                .collect(),
            fired_total: 0,
        });
    }

    /// Removes the scope for `root` entirely.
    pub fn disarm(&self, root: impl AsRef<Path>) {
        let mut scopes = self.scopes.lock().unwrap_or_else(PoisonError::into_inner);
        scopes.retain(|s| s.root != root.as_ref());
    }

    /// How many triggers have fired under `root` since it was armed.
    pub fn fired(&self, root: impl AsRef<Path>) -> u64 {
        let scopes = self.scopes.lock().unwrap_or_else(PoisonError::into_inner);
        scopes
            .iter()
            .find(|s| s.root == root.as_ref())
            .map_or(0, |s| s.fired_total)
    }

    /// Consulted by [`SystemIo`] before each primitive: the fault to
    /// inject for this call, if any. Advances skip counters.
    fn decide(&self, op: FaultOp, path: &Path) -> Option<FaultKind> {
        let mut scopes = self.scopes.lock().unwrap_or_else(PoisonError::into_inner);
        let scope = scopes.iter_mut().find(|s| path.starts_with(&s.root))?;
        for armed in scope.triggers.iter_mut() {
            if armed.fired || armed.trigger.op != op {
                continue;
            }
            if armed.trigger.skip > 0 {
                armed.trigger.skip -= 1;
                return None;
            }
            armed.fired = true;
            scope.fired_total += 1;
            return Some(armed.trigger.kind);
        }
        None
    }
}

static INSTALLED: OnceLock<&'static FaultPlan> = OnceLock::new();

/// Installs the process-global fault plan. Write-once, like
/// `mcc_obs::install_clock`: returns `false` if a plan is already
/// installed. The plan's *contents* stay re-armable via
/// [`FaultPlan::arm`].
pub fn install_fault_plan(plan: &'static FaultPlan) -> bool {
    INSTALLED.set(plan).is_ok()
}

fn decide(op: FaultOp, path: &Path) -> Option<FaultKind> {
    INSTALLED.get().and_then(|plan| plan.decide(op, path))
}

fn eio() -> io::Error {
    io::Error::other("injected fault: eio")
}

fn transient() -> io::Error {
    io::Error::new(io::ErrorKind::Interrupted, "injected fault: transient")
}

fn kill() -> io::Error {
    io::Error::other(KillSignal)
}

/// Maps an injected kind to its error, for primitives where only the
/// error-shaped kinds make sense.
fn error_for(kind: FaultKind) -> io::Error {
    match kind {
        FaultKind::Transient => transient(),
        FaultKind::Kill => kill(),
        // Silent-corruption kinds degrade to a hard error on primitives
        // that cannot express them (e.g. ShortWrite on remove).
        FaultKind::Eio
        | FaultKind::ShortWrite(_)
        | FaultKind::FlipByte(_)
        | FaultKind::TornRename => eio(),
    }
}

/// The production [`StoreIo`]: `std::fs`, with the fault plan consulted
/// before every primitive (a no-op unless a plan is installed *and* a
/// scope covers the path).
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemIo;

impl StoreIo for SystemIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match decide(FaultOp::Read, path) {
            None => fs::read(path),
            Some(FaultKind::FlipByte(offset)) => {
                let mut bytes = fs::read(path)?;
                if !bytes.is_empty() {
                    let at = offset % bytes.len();
                    bytes[at] ^= 0x01;
                }
                Ok(bytes)
            }
            Some(FaultKind::ShortWrite(n)) => {
                let bytes = fs::read(path)?;
                let n = n.min(bytes.len());
                Ok(bytes[..n].to_vec())
            }
            Some(kind) => Err(error_for(kind)),
        }
    }

    fn create_and_write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match decide(FaultOp::CreateAndWrite, path) {
            None => write_all(path, bytes),
            Some(FaultKind::ShortWrite(n)) => {
                // The lie: persist a prefix, report success. Only CRC
                // validation at load time can catch this.
                write_all(path, &bytes[..n.min(bytes.len())])
            }
            Some(FaultKind::FlipByte(offset)) => {
                let mut corrupt = bytes.to_vec();
                if !corrupt.is_empty() {
                    let at = offset % corrupt.len();
                    corrupt[at] ^= 0x01;
                }
                write_all(path, &corrupt)
            }
            Some(kind) => Err(error_for(kind)),
        }
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        match decide(FaultOp::SyncFile, path) {
            None => fs::File::open(path)?.sync_all(),
            Some(kind) => Err(error_for(kind)),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match decide(FaultOp::Rename, from) {
            None => fs::rename(from, to),
            Some(FaultKind::TornRename) => {
                // Destination appears, source survives: a rename the
                // journal replayed as link-without-unlink. Open-time
                // recovery must sweep the leftover source.
                let mut data = Vec::new();
                fs::File::open(from)?.read_to_end(&mut data)?;
                write_all(to, &data)
            }
            Some(kind) => Err(error_for(kind)),
        }
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        match decide(FaultOp::Remove, path) {
            None => fs::remove_file(path),
            Some(kind) => Err(error_for(kind)),
        }
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        if let Some(kind) = decide(FaultOp::List, dir) {
            return Err(error_for(kind));
        }
        let mut out = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.path());
            }
        }
        Ok(out)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        match decide(FaultOp::CreateDirAll, dir) {
            None => fs::create_dir_all(dir),
            Some(kind) => Err(error_for(kind)),
        }
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        match decide(FaultOp::SyncDir, dir) {
            None => fs::File::open(dir)?.sync_all(),
            Some(kind) => Err(error_for(kind)),
        }
    }
}

fn write_all(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut f = fs::File::create(path)?;
    f.write_all(bytes)?;
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triggers_skip_then_fire_once() {
        let plan = FaultPlan::new();
        plan.arm(
            "/tmp/fp-unit",
            vec![Trigger::nth(FaultOp::Read, 2, FaultKind::Eio)],
        );
        let p = Path::new("/tmp/fp-unit/objects/x.mcca");
        assert_eq!(plan.decide(FaultOp::Read, p), None);
        assert_eq!(plan.decide(FaultOp::Read, p), None);
        assert_eq!(plan.decide(FaultOp::Read, p), Some(FaultKind::Eio));
        assert_eq!(plan.decide(FaultOp::Read, p), None);
        assert_eq!(plan.fired("/tmp/fp-unit"), 1);
    }

    #[test]
    fn scopes_are_isolated_by_root() {
        let plan = FaultPlan::new();
        plan.arm(
            "/tmp/fp-a",
            vec![Trigger::first(FaultOp::SyncFile, FaultKind::Kill)],
        );
        plan.arm(
            "/tmp/fp-b",
            vec![Trigger::first(FaultOp::SyncFile, FaultKind::Eio)],
        );
        assert_eq!(
            plan.decide(FaultOp::SyncFile, Path::new("/tmp/fp-b/t")),
            Some(FaultKind::Eio)
        );
        assert_eq!(
            plan.decide(FaultOp::SyncFile, Path::new("/tmp/fp-a/t")),
            Some(FaultKind::Kill)
        );
        // Unrelated paths never fire.
        assert_eq!(
            plan.decide(FaultOp::SyncFile, Path::new("/tmp/other/t")),
            None
        );
    }

    #[test]
    fn rearming_replaces_the_scope() {
        let plan = FaultPlan::new();
        plan.arm(
            "/tmp/fp-r",
            vec![Trigger::first(FaultOp::Remove, FaultKind::Eio)],
        );
        plan.arm("/tmp/fp-r", vec![]);
        assert_eq!(plan.decide(FaultOp::Remove, Path::new("/tmp/fp-r/t")), None);
    }

    #[test]
    fn kill_errors_are_recognisable() {
        assert!(is_kill(&kill()));
        assert!(!is_kill(&eio()));
        assert!(!is_kill(&transient()));
    }
}
