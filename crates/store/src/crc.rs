//! CRC-32 (ISO-HDLC, polynomial `0xEDB88320`) — the checksum behind
//! every section of the artifact format.
//!
//! Hand-rolled (the workspace is zero-external-deps) with a const-built
//! 256-entry table, so the per-byte cost is one table lookup and one
//! shift. The variant matches zlib/`cksum -o 3`, which keeps the golden
//! fixture reproducible with standard tooling.

/// The 256-entry lookup table for reflected polynomial `0xEDB88320`,
/// built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// The CRC-32 of `bytes` (init `0xFFFF_FFFF`, final XOR `0xFFFF_FFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vectors() {
        // The canonical check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_byte_flips() {
        let base = b"schema artifacts payload".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut corrupt = base.clone();
                corrupt[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), reference, "flip at {i}:{bit} undetected");
            }
        }
    }
}
