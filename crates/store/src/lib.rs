//! # `mcc-store` — crash-safe content-addressed artifact persistence
//!
//! Registering a schema with the engine costs a full classification
//! pass: chordality/conformality recognizers, a perfect elimination
//! order, and (when polynomial) the Lemma 1 orderings. All of that is a
//! pure function of the schema — so this crate persists the resulting
//! [`SchemaArtifacts`](mcc::SchemaArtifacts) bundle on disk, keyed by
//! the schema's FNV-1a fingerprint, and a restarted engine **warm-starts**
//! by decoding instead of reclassifying.
//!
//! The design goal is that the disk tier can *never make things worse*:
//!
//! * **Crash-safe writes** — temp file + fsync + atomic rename + dir
//!   fsync; a crash leaves the old object, no object, or a stale temp
//!   file that [`ArtifactStore::open`] sweeps (self-healing).
//! * **Validated reads** — a versioned, per-section-CRC format
//!   ([`format`](mod@crate::format)) plus full structural coherence checks
//!   (`SchemaArtifacts::from_parts`); corrupt or truncated blobs are
//!   quarantined and reported as clean misses, never served.
//! * **Graceful degradation** — transient errors retry with backoff;
//!   persistent ones flip the store into memory-only mode and the
//!   engine keeps serving from RAM.
//! * **Testable failure model** — every filesystem primitive goes
//!   through the [`StoreIo`] seam, and a process-global write-once
//!   [`FaultPlan`] injects short writes, `EIO`, bit rot, torn renames,
//!   and kill-points deterministically (see `tests/chaos.rs`).
//!
//! ```no_run
//! use mcc::prelude::*;
//! use mcc_store::ArtifactStore;
//!
//! let schema = RelationalSchema::from_lists(
//!     "demo",
//!     &["a", "b", "c"],
//!     &[("R", &[0, 1]), ("S", &[1, 2])],
//! );
//! let store = ArtifactStore::open("/var/lib/mcc/artifacts");
//! let key = schema.fingerprint();
//!
//! // First process: classify once, persist.
//! let artifacts = mcc::SchemaArtifacts::build(schema.to_bipartite().unwrap());
//! store.store(key, &artifacts);
//!
//! // Any later process: decode + validate, no reclassification.
//! let warm = store.load(key).expect("persisted above");
//! assert_eq!(warm.classification(), artifacts.classification());
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(missing_docs)]

mod crc;
/// The versioned, checksummed on-disk representation.
pub mod format;
/// The [`StoreIo`] seam, production filesystem, and fault injection.
pub mod io;
mod store;

pub use crc::crc32;
pub use format::{decode, encode, FormatError, MAGIC, VERSION};
pub use io::{
    install_fault_plan, is_kill, FaultKind, FaultOp, FaultPlan, StoreIo, SystemIo, Trigger,
};
pub use store::{ArtifactStore, StoreStats};
