//! Request/response vocabulary of the front door: what a client submits,
//! what can come back, and the [`Ticket`] joining the two across the
//! thread boundary.

use crate::cache::{CacheError, SchemaId};
use mcc::{Solution, SolveBudget, SolveError};
use mcc_graph::Side;
use std::fmt;
use std::sync::mpsc;
use std::time::Duration;

/// Which problem a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Minimum total-node connection (Definition 8; Algorithm 2 /
    /// exact / heuristic).
    Steiner,
    /// Minimum connection w.r.t. one side's node count (Definition 9;
    /// Algorithm 1 / node-weighted exact).
    Pseudo(Side),
}

/// One unit of work for the engine: a query over a registered schema.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// The schema to query (from [`crate::Engine::register`]).
    pub schema: SchemaId,
    /// Object names to connect (attribute or relation labels).
    pub objects: Vec<String>,
    /// Which problem to solve.
    pub kind: QueryKind,
    /// Per-request budget override. `None`: the engine's configured
    /// solver budget applies.
    pub budget: Option<SolveBudget>,
}

impl QueryRequest {
    /// A Steiner (minimum total nodes) request over named objects.
    pub fn steiner(schema: SchemaId, objects: &[&str]) -> Self {
        QueryRequest {
            schema,
            objects: objects.iter().map(|s| s.to_string()).collect(),
            kind: QueryKind::Steiner,
            budget: None,
        }
    }

    /// A pseudo-Steiner request minimizing `side` nodes.
    pub fn pseudo(schema: SchemaId, objects: &[&str], side: Side) -> Self {
        QueryRequest {
            kind: QueryKind::Pseudo(side),
            ..Self::steiner(schema, objects)
        }
    }

    /// Overrides the solve budget for this request only (e.g. a
    /// per-request deadline: `SolveBudget::with_deadline(..)`).
    pub fn with_budget(mut self, budget: SolveBudget) -> Self {
        self.budget = Some(budget);
        self
    }
}

/// Why a request failed after admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The request named a schema this engine's cache does not hold, or
    /// the schema failed validation on artifact rebuild.
    Cache(CacheError),
    /// An object name matched no attribute or relation of the schema.
    UnknownName(String),
    /// The solve itself failed (disconnected terminals, budget
    /// exhaustion with no fallback, internal error).
    Solve(SolveError),
    /// The engine shut down (or a worker died) before answering; the
    /// request was admitted but never served.
    Lost,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Cache(e) => write!(f, "{e}"),
            EngineError::UnknownName(n) => write!(f, "unknown object name {n:?}"),
            EngineError::Solve(e) => write!(f, "solve failed: {e}"),
            EngineError::Lost => write!(f, "the engine shut down before answering"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Why a request was refused at the front door (never admitted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejected {
    /// The bounded submission queue is at capacity — backpressure;
    /// resubmit later or shed load.
    QueueFull,
    /// The engine is shutting down and admits nothing new.
    Shutdown,
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::QueueFull => write!(f, "submission queue is full"),
            Rejected::Shutdown => write!(f, "engine is shutting down"),
        }
    }
}

impl std::error::Error for Rejected {}

/// The response a worker sends back for one request.
pub type Response = Result<Solution, EngineError>;

/// A claim on one admitted request's eventual answer.
#[derive(Debug)]
pub struct Ticket {
    pub(crate) rx: mpsc::Receiver<Response>,
}

impl Ticket {
    /// Blocks until the answer arrives. [`EngineError::Lost`] if the
    /// engine dropped the request (shutdown race, worker death).
    pub fn wait(self) -> Response {
        self.rx.recv().unwrap_or(Err(EngineError::Lost))
    }

    /// As [`Ticket::wait`], giving up (and consuming the ticket) after
    /// `timeout`; `None` on timeout.
    pub fn wait_timeout(self, timeout: Duration) -> Option<Response> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => Some(r),
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(EngineError::Lost)),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
        }
    }

    /// Non-blocking poll: `None` while the answer is still in flight.
    pub fn try_wait(&self) -> Option<Response> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(EngineError::Lost)),
            Err(mpsc::TryRecvError::Empty) => None,
        }
    }
}
