//! Engine-level observability: lock-free counters updated by the front
//! door and the workers, snapshotted into [`EngineStats`].

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// The engine's internal counters. Relaxed ordering throughout: the
/// counters are statistics, not synchronization — the queue mutex and
/// the response channels order the actual work.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub solved: AtomicU64,
    pub failed: AtomicU64,
    pub degraded: AtomicU64,
    pub rejected_full: AtomicU64,
    pub rejected_shutdown: AtomicU64,
}

/// A point-in-time snapshot of one engine's activity (see
/// [`crate::Engine::stats`]). Counter totals are monotonic;
/// `queue_depth` is instantaneous.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests currently admitted but not yet picked up by a worker.
    pub queue_depth: usize,
    /// Requests admitted through the front door.
    pub submitted: u64,
    /// Requests fully served (answer delivered or caller gone).
    pub completed: u64,
    /// Served requests that produced a solution.
    pub solved: u64,
    /// Served requests that produced an error.
    pub failed: u64,
    /// Solutions that stepped down the degradation ladder (budget trips
    /// answered by the heuristic; see `mcc_steiner::Degraded`).
    pub degraded: u64,
    /// Submissions refused because the queue was at capacity.
    pub rejected_full: u64,
    /// Submissions refused because the engine was shutting down.
    pub rejected_shutdown: u64,
    /// Artifact-cache lookups served without schema-level work. Warm
    /// solves hit; a steady-state engine does **only** per-query work.
    pub cache_hits: u64,
    /// Artifact builds (cold registrations + post-invalidation
    /// rebuilds) — the only places classification/ordering ever runs.
    pub cache_misses: u64,
}

impl EngineStats {
    pub(crate) fn snapshot(
        counters: &Counters,
        queue_depth: usize,
        cache_hits: u64,
        cache_misses: u64,
    ) -> Self {
        EngineStats {
            queue_depth,
            submitted: counters.submitted.load(Ordering::Relaxed),
            completed: counters.completed.load(Ordering::Relaxed),
            solved: counters.solved.load(Ordering::Relaxed),
            failed: counters.failed.load(Ordering::Relaxed),
            degraded: counters.degraded.load(Ordering::Relaxed),
            rejected_full: counters.rejected_full.load(Ordering::Relaxed),
            rejected_shutdown: counters.rejected_shutdown.load(Ordering::Relaxed),
            cache_hits,
            cache_misses,
        }
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "queue {} deep; {} submitted, {} completed ({} solved, {} failed, {} degraded); \
             rejected {} full + {} shutdown; cache {} hits / {} misses",
            self.queue_depth,
            self.submitted,
            self.completed,
            self.solved,
            self.failed,
            self.degraded,
            self.rejected_full,
            self.rejected_shutdown,
            self.cache_hits,
            self.cache_misses
        )
    }
}
