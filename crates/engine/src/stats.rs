//! Engine-level observability: lock-free counters updated by the front
//! door and the workers, snapshotted into [`EngineStats`], and rendered
//! in the Prometheus text format.

use mcc_store::StoreStats;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// The engine's internal counters.
///
/// One request bumps its counters in a fixed order — `submitted` (inside
/// the queue lock), then `solved` (then `degraded`, if applicable) or
/// `failed`, then `completed` — and every increment is `SeqCst`.
/// [`Counters::snapshot`] loads in the **reverse** of that order, also
/// `SeqCst`: in the sequentially consistent total order, any increment a
/// snapshot observes implies the snapshot also observes every increment
/// the same request performed earlier. Mid-load scrapes therefore always
/// satisfy `completed ≤ solved + failed ≤ submitted` and
/// `degraded ≤ solved` — the regression that motivated this (an
/// unlocked, relaxed `submitted` bump racing a fast worker, letting a
/// scrape report more outcomes than submissions) is pinned by
/// `tests/stats_consistency.rs`.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub solved: AtomicU64,
    pub failed: AtomicU64,
    pub degraded: AtomicU64,
    pub rejected_full: AtomicU64,
    pub rejected_shutdown: AtomicU64,
    /// Same-schema groups admitted by [`crate::Engine::submit_batch`].
    /// Bumped after `batched_requests`, which is bumped after
    /// `submitted` (all inside the queue lock), so the snapshot's
    /// reverse-order reads keep `batches ≤ batched_requests ≤ submitted`.
    pub batches: AtomicU64,
    /// Requests admitted as members of batch groups.
    pub batched_requests: AtomicU64,
}

/// The counter fields of one consistent snapshot (everything in
/// [`EngineStats`] except queue depth and the cache's own counters).
pub(crate) struct CounterSnapshot {
    pub submitted: u64,
    pub completed: u64,
    pub solved: u64,
    pub failed: u64,
    pub degraded: u64,
    pub rejected_full: u64,
    pub rejected_shutdown: u64,
    pub batches: u64,
    pub batched_requests: u64,
}

impl Counters {
    /// One ordered read of every counter — downstream effects first,
    /// `submitted` last (see the type docs for why that order, combined
    /// with `SeqCst` increments, keeps `solved + failed ≤ submitted` in
    /// every snapshot).
    pub(crate) fn snapshot(&self) -> CounterSnapshot {
        let batches = self.batches.load(Ordering::SeqCst);
        let batched_requests = self.batched_requests.load(Ordering::SeqCst);
        let completed = self.completed.load(Ordering::SeqCst);
        let degraded = self.degraded.load(Ordering::SeqCst);
        let solved = self.solved.load(Ordering::SeqCst);
        let failed = self.failed.load(Ordering::SeqCst);
        let rejected_full = self.rejected_full.load(Ordering::SeqCst);
        let rejected_shutdown = self.rejected_shutdown.load(Ordering::SeqCst);
        let submitted = self.submitted.load(Ordering::SeqCst);
        CounterSnapshot {
            submitted,
            completed,
            solved,
            failed,
            degraded,
            rejected_full,
            rejected_shutdown,
            batches,
            batched_requests,
        }
    }
}

/// A point-in-time snapshot of one engine's activity (see
/// [`crate::Engine::stats`]). Counter totals are monotonic;
/// `queue_depth` is instantaneous.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests currently admitted but not yet picked up by a worker.
    pub queue_depth: usize,
    /// Requests admitted through the front door.
    pub submitted: u64,
    /// Requests fully served (answer delivered or caller gone).
    pub completed: u64,
    /// Served requests that produced a solution.
    pub solved: u64,
    /// Served requests that produced an error.
    pub failed: u64,
    /// Solutions that stepped down the degradation ladder (budget trips
    /// answered by the heuristic; see `mcc_steiner::Degraded`).
    pub degraded: u64,
    /// Submissions refused because the queue was at capacity.
    pub rejected_full: u64,
    /// Submissions refused because the engine was shutting down.
    pub rejected_shutdown: u64,
    /// Same-schema request groups admitted by
    /// [`crate::Engine::submit_batch`] — each costs one queue slot and
    /// one artifact fetch plus solver revalidation at pickup.
    pub batches: u64,
    /// Requests admitted as members of batch groups; `batched_requests /
    /// batches` is the mean batch size (the amortization factor).
    pub batched_requests: u64,
    /// Artifact-cache lookups served without schema-level work. Warm
    /// solves hit; a steady-state engine does **only** per-query work.
    pub cache_hits: u64,
    /// Artifact builds (cold registrations + post-invalidation
    /// rebuilds) — the only places classification/ordering ever runs.
    pub cache_misses: u64,
    /// Bundles the disk tier served in place of a classification pass
    /// (always 0 for a cache without a store).
    pub store_hits: u64,
    /// Disk-tier lookups that found no valid object.
    pub store_misses: u64,
    /// On-disk blobs quarantined after failing validation.
    pub store_quarantined: u64,
    /// Whether the disk tier is in degraded memory-only mode (rendered
    /// as a 0/1 gauge).
    pub store_degraded: bool,
}

/// The engine-level metric families [`EngineStats::render_prometheus`]
/// emits, in output order: `(name, type, help)`. Public so the snapshot
/// test (and any scrape consumer) can assert the name table.
pub const ENGINE_METRICS: [(&str, &str, &str); 16] = [
    (
        "mcc_engine_queue_depth",
        "gauge",
        "Requests admitted but not yet picked up by a worker.",
    ),
    (
        "mcc_engine_submitted_total",
        "counter",
        "Requests admitted through the front door.",
    ),
    (
        "mcc_engine_completed_total",
        "counter",
        "Requests fully served (answer delivered or caller gone).",
    ),
    (
        "mcc_engine_solved_total",
        "counter",
        "Served requests that produced a solution.",
    ),
    (
        "mcc_engine_failed_total",
        "counter",
        "Served requests that produced an error.",
    ),
    (
        "mcc_engine_degraded_total",
        "counter",
        "Solutions that stepped down the degradation ladder.",
    ),
    (
        "mcc_engine_rejected_full_total",
        "counter",
        "Submissions refused because the queue was at capacity.",
    ),
    (
        "mcc_engine_rejected_shutdown_total",
        "counter",
        "Submissions refused because the engine was shutting down.",
    ),
    (
        "mcc_engine_batches_total",
        "counter",
        "Same-schema request groups admitted by submit_batch.",
    ),
    (
        "mcc_engine_batched_requests_total",
        "counter",
        "Requests admitted as members of batch groups.",
    ),
    (
        "mcc_engine_cache_hits_total",
        "counter",
        "Artifact-cache lookups served without schema-level work.",
    ),
    (
        "mcc_engine_cache_misses_total",
        "counter",
        "Artifact builds: cold registrations plus rebuilds.",
    ),
    (
        "mcc_engine_store_hits_total",
        "counter",
        "Bundles served from the disk tier instead of classification.",
    ),
    (
        "mcc_engine_store_misses_total",
        "counter",
        "Disk-tier lookups that found no valid object.",
    ),
    (
        "mcc_engine_store_quarantined_total",
        "counter",
        "On-disk blobs quarantined after failing validation.",
    ),
    (
        "mcc_engine_store_degraded",
        "gauge",
        "1 when the disk tier has degraded to memory-only mode.",
    ),
];

impl EngineStats {
    pub(crate) fn snapshot(
        counters: &Counters,
        queue_depth: usize,
        cache_hits: u64,
        cache_misses: u64,
        store: StoreStats,
    ) -> Self {
        let c = counters.snapshot();
        EngineStats {
            queue_depth,
            submitted: c.submitted,
            completed: c.completed,
            solved: c.solved,
            failed: c.failed,
            degraded: c.degraded,
            rejected_full: c.rejected_full,
            rejected_shutdown: c.rejected_shutdown,
            batches: c.batches,
            batched_requests: c.batched_requests,
            cache_hits,
            cache_misses,
            store_hits: store.hits,
            store_misses: store.misses,
            store_quarantined: store.quarantined,
            store_degraded: store.degraded,
        }
    }

    /// Renders this snapshot in the Prometheus text exposition format:
    /// the [`ENGINE_METRICS`] families, in table order, each with its
    /// `# HELP`/`# TYPE` header. A pure function of the (Copy) snapshot,
    /// so the output is deterministic by construction; for the solver
    /// stack's histograms append `mcc_obs::render_global_into` — the two
    /// use disjoint name prefixes (`mcc_engine_` vs. `mcc_`).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        self.render_prometheus_into(&mut out);
        out
    }

    /// [`EngineStats::render_prometheus`], appending into `out`.
    pub fn render_prometheus_into(&self, out: &mut String) {
        let values: [u64; 16] = [
            self.queue_depth as u64,
            self.submitted,
            self.completed,
            self.solved,
            self.failed,
            self.degraded,
            self.rejected_full,
            self.rejected_shutdown,
            self.batches,
            self.batched_requests,
            self.cache_hits,
            self.cache_misses,
            self.store_hits,
            self.store_misses,
            self.store_quarantined,
            self.store_degraded as u64,
        ];
        for ((name, kind, help), value) in ENGINE_METRICS.iter().zip(values) {
            // Writing to a String cannot fail; discard the fmt results.
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
            let _ = writeln!(out, "{name} {value}");
        }
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "queue {} deep; {} submitted, {} completed ({} solved, {} failed, {} degraded); \
             rejected {} full + {} shutdown; {} batches / {} batched requests; \
             cache {} hits / {} misses; store {} hits / {} misses / {} quarantined{}",
            self.queue_depth,
            self.submitted,
            self.completed,
            self.solved,
            self.failed,
            self.degraded,
            self.rejected_full,
            self.rejected_shutdown,
            self.batches,
            self.batched_requests,
            self.cache_hits,
            self.cache_misses,
            self.store_hits,
            self.store_misses,
            self.store_quarantined,
            if self.store_degraded {
                " (degraded to memory-only)"
            } else {
                ""
            }
        )
    }
}
