//! # `mcc-engine` — concurrent query serving over the paper's solvers
//!
//! The paper's central economics: deciding *how* to answer minimal
//! connection queries — classification into the chordality/acyclicity
//! hierarchy (Theorem 1), the Lemma 1 ordering behind Algorithm 1, the
//! elimination order of Algorithm 2 — is **schema-level** work, while
//! each query only pays for an elimination sweep (Theorems 3–5). A
//! serving system should therefore compute the schema artifacts once and
//! share them across every query and every thread. This crate is that
//! system, in three pieces:
//!
//! * [`SchemaArtifactCache`] — registered schemas each get one immutable,
//!   `Arc`-shared [`mcc::SchemaArtifacts`] bundle (classification, MCS
//!   elimination order, Lemma 1 orderings + `H¹` join tree, CSR
//!   substrate), built on registration and invalidated when the schema
//!   changes. Hit/miss counters make the "warm solves skip schema work"
//!   claim observable.
//! * [`Engine`] — a worker-pool executor (`std::thread` + channels, no
//!   async runtime). Each worker owns its solvers and their `Workspace`s
//!   outright — scratch memory is never shared, only the read-only
//!   artifacts are. Per-request [`SolveBudget`]s ride on the request.
//! * the **front door** — [`Engine::submit`] never blocks: a bounded
//!   queue admits work, [`Rejected::QueueFull`] /
//!   [`Rejected::Shutdown`] push back, [`Engine::shutdown`] drains what
//!   was admitted, and [`EngineStats`] reports depth, outcomes,
//!   degradations, and cache traffic.
//!
//! ```
//! use mcc_engine::{Engine, EngineConfig, QueryRequest};
//! use mcc_datamodel::RelationalSchema;
//!
//! let engine = Engine::new(EngineConfig::default());
//! let hr = engine
//!     .register(RelationalSchema::from_lists(
//!         "hr",
//!         &["emp", "dept", "budget"],
//!         &[("WORKS_IN", &[0, 1]), ("FUNDING", &[1, 2])],
//!     ))
//!     .unwrap();
//! let ticket = engine.submit(QueryRequest::steiner(hr, &["emp", "budget"])).unwrap();
//! let solution = ticket.wait().unwrap();
//! assert_eq!(solution.cost, 5); // emp – WORKS_IN – dept – FUNDING – budget
//! let stats = engine.shutdown();
//! assert_eq!(stats.solved, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod engine;
mod request;
mod stats;

pub use cache::{CacheError, CachedArtifacts, SchemaArtifactCache, SchemaId};
pub use engine::{Engine, EngineConfig};
pub use request::{EngineError, QueryKind, QueryRequest, Rejected, Ticket};
pub use stats::{EngineStats, ENGINE_METRICS};

pub use mcc::{Solution, SolveBudget, SolverConfig};
pub use mcc_graph::Side;
pub use mcc_store::{ArtifactStore, StoreStats};
