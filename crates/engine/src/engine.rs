//! The worker-pool executor and its admission front door.
//!
//! ## Ownership
//!
//! The only state shared between threads is read-only or synchronized:
//! the artifact cache (`Arc`, internally locked), the bounded queue
//! (mutex + condvar), and the counters (atomics). Everything with
//! mutable scratch — the [`mcc::Solver`]s and their `Workspace`s — is
//! owned by exactly one worker thread and never crosses a thread
//! boundary. Workers keep a small per-thread solver table keyed by
//! `(SchemaId, generation)`, revalidated against the cache on every
//! request, so an invalidation atomically retires every worker's stale
//! solver at its next pickup.
//!
//! ## Admission and drain
//!
//! [`Engine::submit`] never blocks and never solves inline: it either
//! enqueues (bounded) or returns a typed [`Rejected`]. Shutdown flips a
//! flag under the queue lock — nothing new is admitted, but workers keep
//! draining until the queue is empty, so every admitted request gets its
//! answer before [`Engine::shutdown`] returns.

use crate::cache::{CachedArtifacts, SchemaArtifactCache, SchemaId};
use crate::request::{EngineError, QueryKind, QueryRequest, Rejected, Response, Ticket};
use crate::stats::{Counters, EngineStats};
use mcc::{SolveError, Solver, SolverConfig};
use mcc_graph::{NodeSet, Stage};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::thread::{self, JoinHandle};

/// Engine sizing and solver tuning.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads. `0` is allowed and means "admission only" — the
    /// queue fills but nothing drains (useful for tests and for staging
    /// work before workers exist); most callers want ≥ 1.
    pub workers: usize,
    /// Submission-queue capacity; the front door rejects with
    /// [`Rejected::QueueFull`] beyond this.
    pub queue_capacity: usize,
    /// Per-solve configuration (budget, routing caps, heuristic
    /// permission) applied to every request without its own budget.
    pub solver: SolverConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 4,
            queue_capacity: 1024,
            solver: SolverConfig::default(),
        }
    }
}

impl EngineConfig {
    /// A config with `workers` threads and defaults elsewhere.
    pub fn with_workers(workers: usize) -> Self {
        EngineConfig {
            workers,
            ..Self::default()
        }
    }
}

/// One unit of queued work: a lone request, or a same-schema group
/// admitted together. A group occupies **one** queue slot and is served
/// off a single artifact fetch and solver revalidation at pickup —
/// that is the amortization [`Engine::submit_batch`] buys.
enum Job {
    Single(SingleJob),
    Batch(BatchJob),
}

struct SingleJob {
    request: QueryRequest,
    reply: mpsc::Sender<Response>,
    /// Admission timestamp from the `mcc-obs` clock; a worker records
    /// `now − enqueued_nanos` into the queue-wait histogram at pickup.
    /// 0 when telemetry is disabled (the record is a no-op then too).
    enqueued_nanos: u64,
}

/// One admitted request and the channel its answer goes back on.
type BatchMember = (QueryRequest, mpsc::Sender<Response>);

struct BatchJob {
    /// The schema every member shares (structurally equal schemas share
    /// one id — the cache dedups by fingerprint at registration, so
    /// grouping by id *is* grouping by fingerprint).
    schema: SchemaId,
    /// Members in submission order, each with its reply channel.
    members: Vec<BatchMember>,
    enqueued_nanos: u64,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<QueueState>,
    work_ready: Condvar,
    capacity: usize,
    counters: Counters,
    cache: Arc<SchemaArtifactCache>,
}

/// The concurrent query-serving engine. See the crate docs for the
/// architecture and a usage example.
///
/// Dropping an engine without calling [`Engine::shutdown`] performs the
/// same graceful drain (admitted work is still answered); `shutdown` is
/// the explicit form that also returns the final [`EngineStats`].
#[derive(Debug)]
pub struct Engine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    config: EngineConfig,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("capacity", &self.capacity)
            .field("cache", &self.cache)
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Starts the worker pool with a fresh, private artifact cache.
    pub fn new(config: EngineConfig) -> Self {
        Self::with_cache(config, Arc::new(SchemaArtifactCache::new()))
    }

    /// Starts the worker pool over an existing (possibly shared)
    /// artifact cache — several engines can serve the same registered
    /// schemas without rebuilding artifacts.
    pub fn with_cache(config: EngineConfig, cache: Arc<SchemaArtifactCache>) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            capacity: config.queue_capacity.max(1),
            counters: Counters::default(),
            cache,
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let solver_config = config.solver;
                thread::Builder::new()
                    .name(format!("mcc-engine-worker-{i}"))
                    .spawn(move || worker_loop(&shared, solver_config))
                    // lint:allow(no-panic): spawn failure during construction is fatal by design -- no engine exists yet to surface an error through.
                    .expect("spawning an engine worker thread")
            })
            .collect();
        Engine {
            shared,
            workers,
            config,
        }
    }

    /// The engine's artifact cache.
    pub fn cache(&self) -> &Arc<SchemaArtifactCache> {
        &self.shared.cache
    }

    /// The configuration the engine was started with.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Registers a schema with the engine's cache (building its artifact
    /// bundle); the returned id keys every [`QueryRequest`].
    pub fn register(
        &self,
        schema: mcc_datamodel::RelationalSchema,
    ) -> Result<SchemaId, crate::cache::CacheError> {
        self.shared.cache.register(schema)
    }

    /// Admits `request`, or rejects it without blocking. The returned
    /// [`Ticket`] resolves to the answer; dropping the ticket abandons
    /// the answer but the request is still served (and counted).
    pub fn submit(&self, request: QueryRequest) -> Result<Ticket, Rejected> {
        let (tx, rx) = mpsc::channel();
        {
            let mut q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if q.shutdown {
                self.shared
                    .counters
                    .rejected_shutdown
                    .fetch_add(1, Ordering::Relaxed);
                return Err(Rejected::Shutdown);
            }
            if q.jobs.len() >= self.shared.capacity {
                self.shared
                    .counters
                    .rejected_full
                    .fetch_add(1, Ordering::Relaxed);
                return Err(Rejected::QueueFull);
            }
            q.jobs.push_back(Job::Single(SingleJob {
                request,
                reply: tx,
                enqueued_nanos: mcc_obs::now_nanos(),
            }));
            // Counted while still holding the queue lock (and `SeqCst`,
            // like the worker-side counters): a worker can only pop this
            // job after the lock is released, so its `solved`/`completed`
            // increments are ordered after this one and a mid-load
            // `stats()` snapshot can never report more outcomes than
            // submissions. (Previously this sat outside the lock, and a
            // fast worker could complete the job first.)
            self.shared
                .counters
                .submitted
                .fetch_add(1, Ordering::SeqCst);
        }
        self.shared.work_ready.notify_one();
        Ok(Ticket { rx })
    }

    /// Admits a whole batch through one front-door pass, grouping the
    /// requests by schema: each same-schema group occupies **one** queue
    /// slot and is served off a single artifact fetch and solver
    /// revalidation (per-request [`mcc_graph::SolveBudget`]s are still
    /// honored per member). Schema ids are cache slots keyed by
    /// fingerprint, so structurally equal schemas land in one group.
    ///
    /// Admission is all-or-nothing: either every request is admitted
    /// (one ticket each, in input order) or none is, with the rejection
    /// reported as `Some((0, rejection))` and every request counted as
    /// refused. An empty batch is a no-op.
    pub fn submit_batch(
        &self,
        requests: impl IntoIterator<Item = QueryRequest>,
    ) -> (Vec<Ticket>, Option<(usize, Rejected)>) {
        let requests: Vec<QueryRequest> = requests.into_iter().collect();
        if requests.is_empty() {
            return (Vec::new(), None);
        }
        let n = requests.len() as u64;
        // Group by schema id, preserving the groups' first-appearance
        // order and the input order within each group. Batches are
        // small and schema counts smaller, so a linear scan beats a map.
        let mut groups: Vec<(SchemaId, Vec<BatchMember>)> = Vec::new();
        let mut tickets = Vec::with_capacity(requests.len());
        for request in requests {
            let (tx, rx) = mpsc::channel();
            tickets.push(Ticket { rx });
            match groups.iter_mut().find(|(s, _)| *s == request.schema) {
                Some((_, members)) => members.push((request, tx)),
                None => groups.push((request.schema, vec![(request, tx)])),
            }
        }
        {
            let mut q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if q.shutdown {
                self.shared
                    .counters
                    .rejected_shutdown
                    .fetch_add(n, Ordering::Relaxed);
                return (Vec::new(), Some((0, Rejected::Shutdown)));
            }
            if q.jobs.len() + groups.len() > self.shared.capacity {
                self.shared
                    .counters
                    .rejected_full
                    .fetch_add(n, Ordering::Relaxed);
                return (Vec::new(), Some((0, Rejected::QueueFull)));
            }
            let enqueued_nanos = mcc_obs::now_nanos();
            let n_groups = groups.len() as u64;
            for (schema, members) in groups {
                q.jobs.push_back(Job::Batch(BatchJob {
                    schema,
                    members,
                    enqueued_nanos,
                }));
            }
            // Same discipline as `submit`: counted inside the lock,
            // `SeqCst`, and in the reverse of the snapshot's read order
            // (`submitted`, then `batched_requests`, then `batches`) so
            // a mid-load scrape always observes
            // `batches ≤ batched_requests ≤ submitted`.
            self.shared
                .counters
                .submitted
                .fetch_add(n, Ordering::SeqCst);
            self.shared
                .counters
                .batched_requests
                .fetch_add(n, Ordering::SeqCst);
            self.shared
                .counters
                .batches
                .fetch_add(n_groups, Ordering::SeqCst);
        }
        self.shared.work_ready.notify_all();
        (tickets, None)
    }

    /// A point-in-time activity snapshot.
    pub fn stats(&self) -> EngineStats {
        let depth = self
            .shared
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .jobs
            .len();
        EngineStats::snapshot(
            &self.shared.counters,
            depth,
            self.shared.cache.hits(),
            self.shared.cache.misses(),
            self.shared.cache.store_stats(),
        )
    }

    /// Stops admission, drains every already-admitted request, joins the
    /// workers, and returns the final stats. With zero workers the queue
    /// cannot drain; pending tickets resolve to [`EngineError::Lost`].
    pub fn shutdown(mut self) -> EngineStats {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.stats()
    }

    fn begin_shutdown(&self) {
        let mut q = self
            .shared
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        q.shutdown = true;
        if self.workers.is_empty() {
            // No one will ever drain: drop pending jobs so their tickets
            // resolve to `Lost` instead of hanging.
            q.jobs.clear();
        }
        drop(q);
        self.shared.work_ready.notify_all();
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One worker: block for work, drain after shutdown, answer every job.
fn worker_loop(shared: &Shared, solver_config: SolverConfig) {
    // (generation, solver) per schema; revalidated against the cache on
    // every request. The solvers (and their workspaces) never leave this
    // thread.
    let mut solvers: HashMap<SchemaId, (u64, Solver)> = HashMap::new();
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            // Condvar discipline: re-check the predicate (job available or
            // shutdown) on every wakeup — `Condvar::wait` may wake
            // spuriously, and `notify_one` may race a worker that grabbed
            // the job on its own.
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break Some(job);
                }
                if q.shutdown {
                    break None;
                }
                q = shared
                    .work_ready
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(job) = job else { return };
        match job {
            Job::Single(job) => {
                // Queue wait: admission (under the lock) to pickup (now).
                mcc_obs::record_stage(
                    mcc_obs::SpanKind::QueueWait,
                    mcc_obs::now_nanos().saturating_sub(job.enqueued_nanos),
                );
                let _serve_span = mcc_obs::span!(Serve);
                // Panic isolation: a panicking solve must cost one query,
                // not the worker — a dead worker stops draining the queue
                // and breaks the shutdown guarantee that every admitted
                // request is answered. No lock is held across `serve`, so
                // nothing is poisoned.
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    serve(shared, &mut solvers, solver_config, &job.request)
                }));
                deliver(shared, &mut solvers, outcome, &job.reply);
            }
            Job::Batch(batch) => {
                mcc_obs::record_stage(
                    mcc_obs::SpanKind::QueueWait,
                    mcc_obs::now_nanos().saturating_sub(batch.enqueued_nanos),
                );
                serve_batch(shared, &mut solvers, solver_config, batch);
            }
        }
    }
}

/// Translates a (possibly panicked) serve outcome into the response,
/// bumps the outcome counters, and sends the reply. On a panic the
/// per-thread solver table may hold a half-updated solver, so it is
/// discarded wholesale and lazily rebuilt from the shared artifact
/// cache.
///
/// Outcome counters are `SeqCst` to pair with the submit-side
/// `submitted` increment — see `Counters` for the snapshot consistency
/// argument (increments here run in the reverse of the snapshot's read
/// order).
fn deliver(
    shared: &Shared,
    solvers: &mut HashMap<SchemaId, (u64, Solver)>,
    outcome: std::thread::Result<Response>,
    reply: &mpsc::Sender<Response>,
) {
    let result = match outcome {
        Ok(result) => result,
        Err(payload) => {
            solvers.clear();
            let detail = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(EngineError::Solve(SolveError::Internal {
                stage: Stage::Session,
                detail: format!("solve panicked: {detail}"),
            }))
        }
    };
    match &result {
        Ok(sol) => {
            shared.counters.solved.fetch_add(1, Ordering::SeqCst);
            if sol.degraded.is_some() {
                shared.counters.degraded.fetch_add(1, Ordering::SeqCst);
            }
        }
        Err(_) => {
            shared.counters.failed.fetch_add(1, Ordering::SeqCst);
        }
    }
    // A dropped ticket is not an error: the request was served and
    // counted either way.
    let _ = reply.send(result);
    shared.counters.completed.fetch_add(1, Ordering::SeqCst);
}

/// Serves one same-schema group: one artifact fetch and one solver
/// revalidation amortized over every member, with per-member panic
/// isolation, budgets, counters, and replies. The single fetch is
/// credited as one cache hit per member
/// ([`SchemaArtifactCache::record_batch_hits`]) so the warm-request ↔
/// cache-hit correspondence survives batching.
fn serve_batch(
    shared: &Shared,
    solvers: &mut HashMap<SchemaId, (u64, Solver)>,
    solver_config: SolverConfig,
    batch: BatchJob,
) {
    mcc_obs::incr(mcc_obs::CounterKind::BatchGroup, 1);
    mcc_obs::incr(
        mcc_obs::CounterKind::BatchedRequest,
        batch.members.len() as u64,
    );
    let cached = match shared.cache.artifacts(batch.schema) {
        Ok(cached) => cached,
        Err(e) => {
            // The whole group fails the same way; each member is still
            // answered and counted individually.
            for (_, reply) in batch.members {
                deliver(
                    shared,
                    solvers,
                    Ok(Err(EngineError::Cache(e.clone()))),
                    &reply,
                );
            }
            return;
        }
    };
    shared
        .cache
        .record_batch_hits(batch.members.len() as u64 - 1);
    for (request, reply) in batch.members {
        let _serve_span = mcc_obs::span!(Serve);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            serve_with_artifacts(&cached, solvers, solver_config, &request)
        }));
        deliver(shared, solvers, outcome, &reply);
    }
}

/// Serves one request on the calling worker thread.
fn serve(
    shared: &Shared,
    solvers: &mut HashMap<SchemaId, (u64, Solver)>,
    solver_config: SolverConfig,
    request: &QueryRequest,
) -> Response {
    let cached = shared
        .cache
        .artifacts(request.schema)
        .map_err(EngineError::Cache)?;
    serve_with_artifacts(&cached, solvers, solver_config, request)
}

/// Serves one request against an already-fetched artifact bundle — the
/// shared tail of the single and batched paths. The batched path calls
/// this once per member with the group's one fetch.
fn serve_with_artifacts(
    cached: &CachedArtifacts,
    solvers: &mut HashMap<SchemaId, (u64, Solver)>,
    solver_config: SolverConfig,
    request: &QueryRequest,
) -> Response {
    // Test-only fault injection: a reserved object name panics inside the
    // serve path, letting the isolation regression tests exercise the
    // worker's catch_unwind without a real solver bug.
    #[cfg(test)]
    {
        if request.objects.iter().any(|o| o == "__mcc_engine_panic__") {
            panic!("injected panic (worker isolation test)");
        }
    }
    // Revalidate this worker's solver: schema invalidation bumps the
    // generation, retiring every worker's cached solver at next pickup.
    let entry = solvers.entry(request.schema);
    let (gen, solver) = entry.or_insert_with(|| {
        (
            cached.generation,
            Solver::from_artifacts(Arc::clone(&cached.artifacts), solver_config),
        )
    });
    if *gen != cached.generation {
        *gen = cached.generation;
        *solver = Solver::from_artifacts(Arc::clone(&cached.artifacts), solver_config);
    }

    let g = cached.artifacts.bipartite().graph();
    let mut terminals = NodeSet::new(g.node_count());
    for name in &request.objects {
        match g.node_by_label(name) {
            Some(v) => {
                terminals.insert(v);
            }
            None => return Err(EngineError::UnknownName(name.clone())),
        }
    }

    // A per-request budget gets a transient solver over the same shared
    // artifacts — warm construction is just a workspace allocation, and
    // the long-lived solver's configuration stays untouched.
    let transient;
    let active: &Solver = match request.budget {
        Some(budget) => {
            let config = SolverConfig {
                budget,
                ..solver_config
            };
            transient = Solver::from_artifacts(Arc::clone(&cached.artifacts), config);
            &transient
        }
        None => solver,
    };

    let result = match request.kind {
        QueryKind::Steiner => active.solve_steiner(&terminals),
        QueryKind::Pseudo(side) => active.solve_pseudo(&terminals, side),
    };
    result.map_err(EngineError::Solve)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcc_datamodel::RelationalSchema;

    fn acyclic() -> RelationalSchema {
        RelationalSchema::from_lists(
            "emp",
            &["emp_id", "name", "dept", "budget"],
            &[("EMP", &[0, 1, 2]), ("DEPT", &[2, 3])],
        )
    }

    #[test]
    fn serves_a_basic_query() {
        let engine = Engine::new(EngineConfig::with_workers(1));
        let id = engine.register(acyclic()).unwrap();
        let sol = engine
            .submit(QueryRequest::steiner(id, &["name", "budget"]))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(sol.strategy, mcc::SteinerStrategy::Algorithm2);
        assert_eq!(sol.cost, 5); // name – EMP – dept – DEPT – budget
    }

    #[test]
    fn unknown_name_is_reported() {
        let engine = Engine::new(EngineConfig::with_workers(1));
        let id = engine.register(acyclic()).unwrap();
        let err = engine
            .submit(QueryRequest::steiner(id, &["name", "salary"]))
            .unwrap()
            .wait()
            .unwrap_err();
        assert_eq!(err, EngineError::UnknownName("salary".into()));
    }

    #[test]
    fn zero_worker_engine_admits_but_never_serves() {
        let engine = Engine::new(EngineConfig {
            workers: 0,
            queue_capacity: 2,
            solver: SolverConfig::default(),
        });
        let id = engine.register(acyclic()).unwrap();
        let t1 = engine.submit(QueryRequest::steiner(id, &["name"])).unwrap();
        let _t2 = engine.submit(QueryRequest::steiner(id, &["dept"])).unwrap();
        assert!(matches!(
            engine.submit(QueryRequest::steiner(id, &["budget"])),
            Err(Rejected::QueueFull)
        ));
        assert_eq!(engine.stats().queue_depth, 2);
        assert_eq!(engine.stats().rejected_full, 1);
        let stats = engine.shutdown();
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(t1.wait(), Err(EngineError::Lost));
    }

    #[test]
    fn submit_after_shutdown_flag_is_rejected() {
        let engine = Engine::new(EngineConfig::with_workers(1));
        let id = engine.register(acyclic()).unwrap();
        engine.begin_shutdown();
        assert!(matches!(
            engine.submit(QueryRequest::steiner(id, &["name"])),
            Err(Rejected::Shutdown)
        ));
        assert_eq!(engine.stats().rejected_shutdown, 1);
    }

    #[test]
    fn per_request_budget_overrides() {
        use mcc::SolveBudget;
        let engine = Engine::new(EngineConfig::with_workers(1));
        let id = engine.register(acyclic()).unwrap();
        // An already-expired deadline must trip the budget for this
        // request only…
        let starved = QueryRequest::steiner(id, &["name", "budget"])
            .with_budget(SolveBudget::with_deadline(std::time::Duration::ZERO));
        std::thread::sleep(std::time::Duration::from_millis(2));
        let err = engine.submit(starved).unwrap().wait().unwrap_err();
        assert!(matches!(
            err,
            EngineError::Solve(mcc::SolveError::Budget(_))
        ));
        // …while the next, unbudgeted request is unaffected.
        let ok = engine
            .submit(QueryRequest::steiner(id, &["name", "budget"]))
            .unwrap()
            .wait();
        assert!(ok.is_ok());
    }

    #[test]
    fn worker_panic_does_not_wedge_shutdown() {
        // One worker: if the panic killed it, nothing could drain the
        // queue and the follow-up request (and shutdown) would hang.
        let engine = Engine::new(EngineConfig::with_workers(1));
        let id = engine.register(acyclic()).unwrap();
        let poisoned = engine
            .submit(QueryRequest::steiner(id, &["__mcc_engine_panic__"]))
            .unwrap();
        let err = poisoned.wait().unwrap_err();
        assert!(
            matches!(
                &err,
                EngineError::Solve(SolveError::Internal { stage, detail })
                    if *stage == Stage::Session && detail.contains("panicked")
            ),
            "expected an isolated internal error, got {err:?}"
        );
        // The same (sole) worker is still alive and serving.
        let ok = engine
            .submit(QueryRequest::steiner(id, &["name", "budget"]))
            .unwrap()
            .wait();
        assert!(ok.is_ok());
        let stats = engine.shutdown();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.solved, 1);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.queue_depth, 0);
    }

    #[test]
    fn engine_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
        fn assert_send<T: Send>() {}
        assert_send::<Ticket>();
    }
}
