//! The schema-artifact cache: one immutable, `Arc`-shared
//! [`SchemaArtifacts`] bundle per registered schema.
//!
//! ## Keying and invalidation
//!
//! Registration hands out an opaque [`SchemaId`] (a slot index). Each
//! slot carries a **generation** counter; [`SchemaArtifactCache::replace`]
//! and [`SchemaArtifactCache::invalidate`] bump it and drop the cached
//! bundle, so any consumer holding `(SchemaId, generation)` can detect
//! staleness without comparing schemas. Rebuild after invalidation is
//! lazy — the next [`SchemaArtifactCache::artifacts`] call pays for it
//! (and counts a **miss**); every serve off the cached bundle counts a
//! **hit**. Registration itself builds eagerly and counts the initial
//! miss, so `hits + misses` equals the number of artifact lookups plus
//! registrations, and "warm solves skip classification/ordering" is
//! exactly `misses == schemas registered` after any warm run.
//!
//! [`SchemaArtifactCache::register`] dedups structurally identical
//! schemas (fingerprint first, full `==` to confirm), returning the
//! existing id — re-registering a schema is a hit, not a rebuild.
//!
//! ## The disk tier
//!
//! A cache built with [`SchemaArtifactCache::with_store`] is **tiered**:
//! hot bundles live in memory behind `Arc`s as before, and every build
//! first consults a crash-safe content-addressed
//! [`ArtifactStore`](mcc_store::ArtifactStore) keyed by schema
//! fingerprint. A valid on-disk bundle skips classification entirely
//! (the store counts a `store_hit`; the slot still counts its cold
//! cache miss); a fresh build is written through so the *next* process
//! warm-starts. Two rules keep the tier invisible to correctness:
//!
//! * a loaded bundle is only accepted if its bipartite graph equals the
//!   schema's own — a fingerprint collision or misfiled blob falls back
//!   to a clean rebuild (and overwrite);
//! * [`SchemaArtifactCache::invalidate`] removes the disk object *under
//!   the slot write lock*, so a racing rebuilder can never re-serve the
//!   pre-invalidation bundle from disk for the new generation.
//!
//! The store degrades itself to memory-only on persistent I/O errors;
//! the cache keeps working identically (every `store`/`load` just
//! becomes a no-op miss).

use mcc::SchemaArtifacts;
use mcc_datamodel::{RelationalSchema, RelationalSchemaError};
use mcc_store::{ArtifactStore, StoreStats};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

/// Opaque handle to a registered schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SchemaId(usize);

impl fmt::Display for SchemaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schema#{}", self.0)
    }
}

/// A cache lookup result: the shared bundle plus the generation it was
/// built for. Holders can revalidate cheaply by comparing generations.
#[derive(Debug, Clone)]
pub struct CachedArtifacts {
    /// The slot generation the bundle corresponds to.
    pub generation: u64,
    /// The shared artifact bundle.
    pub artifacts: Arc<SchemaArtifacts>,
}

/// Cache failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError {
    /// The id does not name a registered schema (of *this* cache).
    UnknownSchema(SchemaId),
    /// The schema failed validation when (re)building its artifacts.
    Schema(RelationalSchemaError),
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::UnknownSchema(id) => write!(f, "{id} is not registered"),
            CacheError::Schema(e) => write!(f, "invalid schema: {e}"),
        }
    }
}

impl std::error::Error for CacheError {}

struct Slot {
    schema: Arc<RelationalSchema>,
    fingerprint: u64,
    generation: u64,
    artifacts: Option<Arc<SchemaArtifacts>>,
}

/// Debug-build coherence certificate for a cache slot: the stored
/// fingerprint matches the stored schema (they are only ever set
/// together, so a mismatch means a torn update), and the slot's
/// generation has not moved backwards relative to a generation the
/// caller observed earlier (generations are bump-only). Invoked through
/// `debug_assert!` at the rebuild-commit and mutation points; compiled
/// out of release builds.
fn check_cache_coherence(slot: &Slot, observed_generation: u64) -> bool {
    slot.fingerprint == slot.schema.fingerprint() && slot.generation >= observed_generation
}

/// The shared, thread-safe artifact cache. See the module docs for the
/// keying/invalidation contract. All methods take `&self`; the cache is
/// `Sync` and meant to live in an `Arc` shared by every worker (and
/// possibly several [`crate::Engine`]s).
#[derive(Default)]
pub struct SchemaArtifactCache {
    slots: RwLock<Vec<Slot>>,
    hits: AtomicU64,
    misses: AtomicU64,
    store: Option<Arc<ArtifactStore>>,
}

impl fmt::Debug for SchemaArtifactCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SchemaArtifactCache")
            .field("schemas", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl SchemaArtifactCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache backed by a persistent artifact store: builds
    /// consult the disk tier first and write through on rebuild, so a
    /// restarted engine sharing the same store root warm-starts without
    /// reclassifying (see the module docs).
    pub fn with_store(store: Arc<ArtifactStore>) -> Self {
        SchemaArtifactCache {
            store: Some(store),
            ..Self::default()
        }
    }

    /// The disk tier, if this cache has one.
    pub fn store(&self) -> Option<&Arc<ArtifactStore>> {
        self.store.as_ref()
    }

    /// The disk tier's counters (all-zero when there is no disk tier).
    pub fn store_stats(&self) -> StoreStats {
        self.store.as_ref().map(|s| s.stats()).unwrap_or_default()
    }

    /// Registers `schema`, building its artifact bundle eagerly (counted
    /// as the slot's one cold **miss**). A schema structurally equal to
    /// an already-registered one is deduplicated: the existing id comes
    /// back and the lookup counts a **hit**.
    pub fn register(&self, schema: RelationalSchema) -> Result<SchemaId, CacheError> {
        let fingerprint = schema.fingerprint();
        {
            let slots = self.slots.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(i) = slots
                .iter()
                .position(|s| s.fingerprint == fingerprint && *s.schema == schema)
            {
                self.hits.fetch_add(1, Ordering::Relaxed);
                mcc_obs::incr(mcc_obs::CounterKind::CacheHit, 1);
                return Ok(SchemaId(i));
            }
        }
        // Build outside the slot lock — classification and the disk tier
        // are the expensive part, and holding `slots` across them would
        // stall every concurrent lookup. Racing registrations of the
        // same schema may duplicate the build; the re-check under the
        // write lock below keeps ids unique and discards the loser.
        let artifacts = self.build_or_load(&schema)?;
        let mut slots = self.slots.write().unwrap_or_else(PoisonError::into_inner);
        if let Some(i) = slots
            .iter()
            .position(|s| s.fingerprint == fingerprint && *s.schema == schema)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            mcc_obs::incr(mcc_obs::CounterKind::CacheHit, 1);
            return Ok(SchemaId(i));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        mcc_obs::incr(mcc_obs::CounterKind::CacheMiss, 1);
        slots.push(Slot {
            schema: Arc::new(schema),
            fingerprint,
            generation: 0,
            artifacts: Some(artifacts),
        });
        debug_assert!(
            slots.last().is_some_and(|s| check_cache_coherence(s, 0)),
            "registration created an incoherent slot"
        );
        Ok(SchemaId(slots.len() - 1))
    }

    /// Replaces the schema behind `id` (a schema *mutation*): the old
    /// bundle is dropped, the generation bumps, and the new bundle is
    /// built lazily on the next [`SchemaArtifactCache::artifacts`] call.
    /// The new schema is validated here, eagerly, so a bad replacement
    /// fails at the mutation site instead of at some later query.
    pub fn replace(&self, id: SchemaId, schema: RelationalSchema) -> Result<(), CacheError> {
        schema.to_bipartite().map_err(CacheError::Schema)?;
        let mut slots = self.slots.write().unwrap_or_else(PoisonError::into_inner);
        let slot = slots.get_mut(id.0).ok_or(CacheError::UnknownSchema(id))?;
        let observed = slot.generation;
        slot.fingerprint = schema.fingerprint();
        slot.schema = Arc::new(schema);
        slot.generation += 1;
        slot.artifacts = None;
        debug_assert!(
            check_cache_coherence(slot, observed + 1),
            "replace left an incoherent slot"
        );
        Ok(())
    }

    /// Drops the cached bundle for `id` and bumps its generation without
    /// changing the schema — forcing the next lookup to rebuild (a
    /// **miss**). Returns `false` for an unknown id.
    pub fn invalidate(&self, id: SchemaId) -> bool {
        let mut slots = self.slots.write().unwrap_or_else(PoisonError::into_inner);
        match slots.get_mut(id.0) {
            Some(slot) => {
                slot.generation += 1;
                slot.artifacts = None;
                // Drop the disk object while still holding the write
                // lock: a racing rebuilder re-reads the slot (blocking
                // on this lock) before consulting the store, so by the
                // time it can observe the new generation the old bytes
                // are gone and it must genuinely rebuild.
                if let Some(store) = &self.store {
                    // lint:allow(blocking-under-lock): the unlink under
                    // the write lock is the invalidation barrier itself —
                    // moving it outside reopens the stale-read race this
                    // ordering closes (pinned by store_tier.rs).
                    store.remove(slot.fingerprint);
                }
                true
            }
            None => false,
        }
    }

    /// The artifacts for `id`: the cached bundle (a **hit**), or a lazy
    /// rebuild if the slot was invalidated (a **miss**).
    pub fn artifacts(&self, id: SchemaId) -> Result<CachedArtifacts, CacheError> {
        {
            let slots = self.slots.read().unwrap_or_else(PoisonError::into_inner);
            let slot = slots.get(id.0).ok_or(CacheError::UnknownSchema(id))?;
            if let Some(a) = &slot.artifacts {
                self.hits.fetch_add(1, Ordering::Relaxed);
                mcc_obs::incr(mcc_obs::CounterKind::CacheHit, 1);
                return Ok(CachedArtifacts {
                    generation: slot.generation,
                    artifacts: Arc::clone(a),
                });
            }
        }
        // Rebuild outside any lock (classification is the expensive
        // part), then install under the write lock — racing rebuilders
        // may duplicate work but never serve stale artifacts: the
        // generation is re-checked and a bundle built for an older
        // generation is discarded.
        let (schema, generation) = {
            let slots = self.slots.read().unwrap_or_else(PoisonError::into_inner);
            let slot = slots.get(id.0).ok_or(CacheError::UnknownSchema(id))?;
            (Arc::clone(&slot.schema), slot.generation)
        };
        let built = self.build_or_load(&schema)?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        mcc_obs::incr(mcc_obs::CounterKind::CacheMiss, 1);
        let mut slots = self.slots.write().unwrap_or_else(PoisonError::into_inner);
        let slot = slots.get_mut(id.0).ok_or(CacheError::UnknownSchema(id))?;
        // Generations never move backwards, even across the unlocked
        // rebuild window (debug-build certificate).
        debug_assert!(
            check_cache_coherence(slot, generation),
            "slot regressed behind an observed generation during rebuild"
        );
        if slot.generation == generation {
            if slot.artifacts.is_none() {
                slot.artifacts = Some(Arc::clone(&built));
            }
            let a = slot.artifacts.as_ref().unwrap_or(&built);
            Ok(CachedArtifacts {
                generation,
                artifacts: Arc::clone(a),
            })
        } else {
            // Invalidated again while we were building: retry once
            // recursively (bounded in practice — each retry observes a
            // strictly newer generation).
            drop(slots);
            self.artifacts(id)
        }
    }

    /// Credits `extra` additional **hits** without performing lookups.
    ///
    /// The engine's batched serving path fetches a group's artifacts
    /// once (one real lookup) and serves every member off that bundle;
    /// crediting the remaining members here keeps the external invariant
    /// that warm requests and cache hits stay in one-to-one
    /// correspondence whether or not they were batched.
    pub fn record_batch_hits(&self, extra: u64) {
        if extra == 0 {
            return;
        }
        self.hits.fetch_add(extra, Ordering::Relaxed);
        mcc_obs::incr(mcc_obs::CounterKind::CacheHit, extra);
    }

    /// The schema behind `id`, if registered.
    pub fn schema(&self, id: SchemaId) -> Option<Arc<RelationalSchema>> {
        let slots = self.slots.read().unwrap_or_else(PoisonError::into_inner);
        slots.get(id.0).map(|s| Arc::clone(&s.schema))
    }

    /// Number of registered schemas.
    pub fn len(&self) -> usize {
        self.slots
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether no schema is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Artifact lookups served from the cache (plus dedup'd
    /// registrations).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Artifact builds: cold registrations plus post-invalidation
    /// rebuilds.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// The tiered build: a validated disk hit skips classification; a
    /// miss builds and writes through. Without a store this is exactly
    /// the old cold build.
    fn build_or_load(&self, schema: &RelationalSchema) -> Result<Arc<SchemaArtifacts>, CacheError> {
        let bg = schema.to_bipartite().map_err(CacheError::Schema)?;
        let Some(store) = &self.store else {
            return Ok(Arc::new(SchemaArtifacts::build(bg)));
        };
        let fingerprint = schema.fingerprint();
        if let Some(loaded) = store.load(fingerprint) {
            // Last line of defense against a fingerprint collision (or a
            // blob filed under the wrong key despite the header echo):
            // the decoded bundle must describe *this* schema's graph.
            if *loaded.bipartite() == bg {
                return Ok(Arc::new(loaded));
            }
        }
        let built = Arc::new(SchemaArtifacts::build(bg));
        store.store(fingerprint, &built);
        Ok(built)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RelationalSchema {
        RelationalSchema::from_lists(
            "emp",
            &["emp_id", "name", "dept", "budget"],
            &[("EMP", &[0, 1, 2]), ("DEPT", &[2, 3])],
        )
    }

    #[test]
    fn register_is_the_only_cold_miss() {
        let cache = SchemaArtifactCache::new();
        let id = cache.register(sample()).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        for _ in 0..5 {
            let got = cache.artifacts(id).unwrap();
            assert_eq!(got.generation, 0);
            assert!(got.artifacts.classification().six_two);
        }
        assert_eq!((cache.hits(), cache.misses()), (5, 1));
    }

    #[test]
    fn structurally_equal_schemas_deduplicate() {
        let cache = SchemaArtifactCache::new();
        let a = cache.register(sample()).unwrap();
        let b = cache.register(sample()).unwrap();
        assert_eq!(a, b);
        assert_eq!(cache.len(), 1);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn invalidation_bumps_generation_and_rebuilds_lazily() {
        let cache = SchemaArtifactCache::new();
        let id = cache.register(sample()).unwrap();
        let g0 = cache.artifacts(id).unwrap();
        assert!(cache.invalidate(id));
        let g1 = cache.artifacts(id).unwrap();
        assert_eq!(g1.generation, g0.generation + 1);
        assert!(!Arc::ptr_eq(&g0.artifacts, &g1.artifacts));
        // register miss + rebuild miss, one hit each for g0 and the
        // post-rebuild lookups.
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn replace_swaps_the_schema() {
        let cache = SchemaArtifactCache::new();
        let id = cache.register(sample()).unwrap();
        let bigger = RelationalSchema::from_lists(
            "emp2",
            &["emp_id", "name", "dept", "budget", "site"],
            &[("EMP", &[0, 1, 2]), ("DEPT", &[2, 3]), ("LOC", &[3, 4])],
        );
        cache.replace(id, bigger.clone()).unwrap();
        assert_eq!(*cache.schema(id).unwrap(), bigger);
        let got = cache.artifacts(id).unwrap();
        assert_eq!(got.generation, 1);
        assert_eq!(got.artifacts.bipartite().graph().node_count(), 8);
        // Invalid replacements fail eagerly and leave the slot intact.
        let bad = RelationalSchema::from_lists("bad", &["a"], &[("r", &[7])]);
        assert!(matches!(cache.replace(id, bad), Err(CacheError::Schema(_))));
        assert_eq!(*cache.schema(id).unwrap(), bigger);
    }

    #[test]
    fn unknown_ids_are_reported() {
        let cache = SchemaArtifactCache::new();
        let other = SchemaArtifactCache::new();
        let id = other.register(sample()).unwrap();
        assert!(matches!(
            cache.artifacts(id),
            Err(CacheError::UnknownSchema(e)) if e == id
        ));
        assert!(!cache.invalidate(id));
        assert!(cache.schema(id).is_none());
    }

    #[test]
    fn cache_is_shareable() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SchemaArtifactCache>();
        assert_send_sync::<CachedArtifacts>();
    }
}
