//! Concurrency suite for the serving engine: plain threads (no loom) —
//! shared-schema fan-out, cold-vs-warm result identity, shutdown-under-
//! load draining, and the warm-cache acceptance assertion that a
//! steady-state engine does no schema-level work at all.

use mcc::{Solver, SolverConfig};
use mcc_datamodel::relational::Relation;
use mcc_datamodel::RelationalSchema;
use mcc_engine::{
    Engine, EngineConfig, EngineError, QueryKind, QueryRequest, Rejected, SchemaArtifactCache,
};
use mcc_gen::join_tree::JoinTreeShape;
use mcc_gen::random_alpha_acyclic;
use mcc_graph::{NodeSet, Side};
use proptest::prelude::*;
use std::sync::Arc;

/// A generated α-acyclic schema, seeded.
fn generated_schema(seed: u64) -> RelationalSchema {
    let (h, _) = random_alpha_acyclic(JoinTreeShape::default(), seed);
    RelationalSchema::from_hypergraph(&format!("gen{seed}"), &h)
}

/// The schemas the shared-fan-out tests serve: two generated α-acyclic
/// ones plus a handcrafted cyclic one (exact/heuristic routes).
fn schema_mix() -> Vec<RelationalSchema> {
    vec![
        generated_schema(1),
        generated_schema(2),
        RelationalSchema::from_lists(
            "cyc",
            &["a", "b", "c"],
            &[("r1", &[0, 1]), ("r2", &[1, 2]), ("r3", &[0, 2])],
        ),
    ]
}

/// Deterministic query: the first and last attribute names of `schema`.
fn span_query(schema: &RelationalSchema) -> Vec<String> {
    let first = schema.attributes.first().expect("attributes").clone();
    let last = schema.attributes.last().expect("attributes").clone();
    vec![first, last]
}

/// Reference answer computed cold, single-threaded, straight through the
/// solver (its own artifact build — no cache involved).
fn cold_reference(
    schema: &RelationalSchema,
    objects: &[String],
    kind: QueryKind,
) -> Result<mcc::Solution, mcc::SolveError> {
    let bg = schema.to_bipartite().expect("valid schema");
    let g = bg.graph().clone();
    let mut terminals = NodeSet::new(g.node_count());
    for name in objects {
        terminals.insert(g.node_by_label(name).expect("label resolves"));
    }
    let solver = Solver::with_config(bg, SolverConfig::default());
    match kind {
        QueryKind::Steiner => solver.solve_steiner(&terminals),
        QueryKind::Pseudo(side) => solver.solve_pseudo(&terminals, side),
    }
}

#[test]
fn n_threads_times_m_queries_over_shared_schemas() {
    const THREADS: usize = 8;
    const QUERIES: usize = 25;
    let engine = Engine::new(EngineConfig::with_workers(4));
    let schemas = schema_mix();
    let ids: Vec<_> = schemas
        .iter()
        .map(|s| engine.register(s.clone()).expect("register"))
        .collect();
    let expected: Vec<_> = schemas
        .iter()
        .map(|s| cold_reference(s, &span_query(s), QueryKind::Steiner))
        .collect();

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let engine = &engine;
            let schemas = &schemas;
            let ids = &ids;
            let expected = &expected;
            scope.spawn(move || {
                for q in 0..QUERIES {
                    let which = (t + q) % schemas.len();
                    let objects = span_query(&schemas[which]);
                    let names: Vec<&str> = objects.iter().map(String::as_str).collect();
                    let ticket = engine
                        .submit(QueryRequest::steiner(ids[which], &names))
                        .expect("admitted");
                    let got = ticket.wait();
                    match (&got, &expected[which]) {
                        (Ok(sol), Ok(want)) => assert_eq!(sol, want),
                        (Err(EngineError::Solve(e)), Err(want)) => assert_eq!(e, want),
                        (got, want) => panic!("mismatch: got {got:?}, want {want:?}"),
                    }
                }
            });
        }
    });

    let stats = engine.shutdown();
    let total = (THREADS * QUERIES) as u64;
    assert_eq!(stats.submitted, total);
    assert_eq!(stats.completed, total);
    assert_eq!(stats.solved + stats.failed, total);
    assert_eq!(stats.queue_depth, 0);
    // Schema-level work happened exactly once per schema.
    assert_eq!(stats.cache_misses, schemas.len() as u64);
    assert_eq!(stats.cache_hits, total);
}

#[test]
fn warm_solves_skip_schema_work_per_engine_stats() {
    // The acceptance assertion: after registration, N solves = N cache
    // hits and zero additional misses — classification/ordering never
    // reruns on the warm path.
    let engine = Engine::new(EngineConfig::with_workers(2));
    let schema = generated_schema(5);
    let id = engine.register(schema.clone()).expect("register");
    assert_eq!(engine.stats().cache_misses, 1);

    const N: usize = 40;
    let objects = span_query(&schema);
    let names: Vec<&str> = objects.iter().map(String::as_str).collect();
    let (tickets, rejected) =
        engine.submit_batch((0..N).map(|_| QueryRequest::steiner(id, &names)));
    assert!(rejected.is_none());
    for t in tickets {
        t.wait().expect("warm solve succeeds");
    }
    let stats = engine.stats();
    assert_eq!(stats.cache_hits, N as u64);
    assert_eq!(stats.cache_misses, 1, "warm solves must not rebuild");

    // Invalidation forces exactly one rebuild, then warmth resumes.
    assert!(engine.cache().invalidate(id));
    engine
        .submit(QueryRequest::steiner(id, &names))
        .expect("admitted")
        .wait()
        .expect("post-invalidation solve");
    assert_eq!(engine.stats().cache_misses, 2);
    engine
        .submit(QueryRequest::steiner(id, &names))
        .expect("admitted")
        .wait()
        .expect("re-warmed solve");
    assert_eq!(engine.stats().cache_misses, 2);
}

/// `got` must be the same solution (or the same solver error) as the
/// cold single-threaded reference.
fn assert_matches_reference(
    got: &Result<mcc::Solution, EngineError>,
    want: &Result<mcc::Solution, mcc::SolveError>,
) {
    match (got, want) {
        (Ok(sol), Ok(want)) => assert_eq!(sol, want),
        (Err(EngineError::Solve(e)), Err(want)) => assert_eq!(e, want),
        (got, want) => panic!("mismatch: got {got:?}, want {want:?}"),
    }
}

#[test]
fn mixed_schema_batches_interleave_with_single_solves() {
    use mcc::SolveBudget;

    const THREADS: usize = 6;
    const ROUNDS: usize = 6;
    let engine = Engine::new(EngineConfig::with_workers(4));
    let schemas = schema_mix();
    let ids: Vec<_> = schemas
        .iter()
        .map(|s| engine.register(s.clone()).expect("register"))
        .collect();
    let queries: Vec<Vec<String>> = schemas.iter().map(span_query).collect();
    let expected: Vec<_> = schemas
        .iter()
        .zip(&queries)
        .map(|(s, q)| cold_reference(s, q, QueryKind::Steiner))
        .collect();
    // A zero-duration deadline trips at the first check of its own
    // solve, wherever in a batch group that member lands.
    let starved = SolveBudget::with_deadline(std::time::Duration::ZERO);

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let engine = &engine;
            let ids = &ids;
            let queries = &queries;
            let expected = &expected;
            scope.spawn(move || {
                for r in 0..ROUNDS {
                    // Two members per schema (so same-schema grouping is
                    // real) plus one starved member whose per-request
                    // budget must be enforced inside its group.
                    let mut members = Vec::new();
                    for k in 0..2 * ids.len() {
                        let which = (t + r + k) % ids.len();
                        let names: Vec<&str> = queries[which].iter().map(String::as_str).collect();
                        members.push((which, QueryRequest::steiner(ids[which], &names)));
                    }
                    let starved_at = members.len();
                    let names: Vec<&str> = queries[0].iter().map(String::as_str).collect();
                    members.push((
                        usize::MAX,
                        QueryRequest::steiner(ids[0], &names).with_budget(starved),
                    ));
                    let (tickets, rejected) =
                        engine.submit_batch(members.iter().map(|(_, req)| req.clone()));
                    assert!(rejected.is_none(), "queue sized for the load");
                    assert_eq!(tickets.len(), members.len());

                    // An interleaved single solve races the batch.
                    let which = (t + r) % ids.len();
                    let names: Vec<&str> = queries[which].iter().map(String::as_str).collect();
                    let single = engine
                        .submit(QueryRequest::steiner(ids[which], &names))
                        .expect("admitted")
                        .wait();
                    assert_matches_reference(&single, &expected[which]);

                    // Tickets map positionally onto the submitted batch,
                    // whatever schema groups the front door formed.
                    for (i, (ticket, (which, _))) in tickets.into_iter().zip(&members).enumerate() {
                        let got = ticket.wait();
                        if i == starved_at {
                            assert!(
                                matches!(got, Err(EngineError::Solve(mcc::SolveError::Budget(_)))),
                                "starved member must trip its own budget"
                            );
                        } else {
                            assert_matches_reference(&got, &expected[*which]);
                        }
                    }
                }
            });
        }
    });

    let stats = engine.shutdown();
    let per_batch = 2 * schemas.len() + 1;
    let batch_members = (THREADS * ROUNDS * per_batch) as u64;
    let singles = (THREADS * ROUNDS) as u64;
    assert_eq!(stats.submitted, batch_members + singles);
    assert_eq!(stats.completed, stats.submitted);
    assert_eq!(stats.solved + stats.failed, stats.completed);
    assert_eq!(stats.failed, (THREADS * ROUNDS) as u64); // the starved members
    assert_eq!(stats.batched_requests, batch_members);
    // Every batch covers all three schemas, so it forms three groups.
    assert_eq!(stats.batches, (THREADS * ROUNDS * schemas.len()) as u64);
    assert_eq!(stats.queue_depth, 0);
}

#[test]
fn shutdown_under_load_drains_every_admitted_request() {
    const LOAD: usize = 200;
    let engine = Engine::new(EngineConfig {
        workers: 2,
        queue_capacity: LOAD,
        solver: SolverConfig::default(),
    });
    let schema = generated_schema(9);
    let id = engine.register(schema.clone()).expect("register");
    let objects = span_query(&schema);
    let names: Vec<&str> = objects.iter().map(String::as_str).collect();
    let (tickets, rejected) =
        engine.submit_batch((0..LOAD).map(|_| QueryRequest::steiner(id, &names)));
    assert!(rejected.is_none(), "queue sized for the whole load");
    // Shut down immediately, while (almost) everything is still queued:
    // the drain contract says every admitted request is still answered.
    let stats = engine.shutdown();
    assert_eq!(stats.completed, LOAD as u64);
    // Batch accounting is conserved across the drain: every admitted
    // member was counted at admission and served before exit.
    assert_eq!(stats.batched_requests, LOAD as u64);
    assert_eq!(stats.batches, 1, "one schema, one group");
    assert_eq!(stats.queue_depth, 0);
    for t in tickets {
        assert!(
            t.wait().is_ok(),
            "an admitted request must be served, not Lost"
        );
    }
}

#[test]
fn replace_retires_stale_worker_solvers() {
    let engine = Engine::new(EngineConfig::with_workers(2));
    let id = engine
        .register(RelationalSchema::from_lists(
            "v1",
            &["a", "b"],
            &[("R", &[0, 1])],
        ))
        .expect("register");
    engine
        .submit(QueryRequest::steiner(id, &["a", "b"]))
        .expect("admitted")
        .wait()
        .expect("serves v1");
    // Mutate the schema: a new attribute appears, reachable only through
    // a new relation. Every worker must retire its cached solver.
    engine
        .cache()
        .replace(
            id,
            RelationalSchema::from_lists("v2", &["a", "b", "c"], &[("R", &[0, 1]), ("S", &[1, 2])]),
        )
        .expect("replace");
    let sol = engine
        .submit(QueryRequest::steiner(id, &["a", "c"]))
        .expect("admitted")
        .wait()
        .expect("serves v2 names after replacement");
    assert_eq!(sol.cost, 5); // a – R – b – S – c
                             // The old-only query still works; a name that never existed fails.
    let err = engine
        .submit(QueryRequest::steiner(id, &["a", "z"]))
        .expect("admitted")
        .wait()
        .unwrap_err();
    assert_eq!(err, EngineError::UnknownName("z".into()));
}

#[test]
fn backpressure_rejections_are_typed_and_counted() {
    // Zero workers: the queue never drains, so rejection is
    // deterministic.
    let engine = Engine::new(EngineConfig {
        workers: 0,
        queue_capacity: 3,
        solver: SolverConfig::default(),
    });
    let schema = generated_schema(11);
    let id = engine.register(schema.clone()).expect("register");
    let objects = span_query(&schema);
    let names: Vec<&str> = objects.iter().map(String::as_str).collect();
    for _ in 0..3 {
        engine
            .submit(QueryRequest::steiner(id, &names))
            .expect("under capacity");
    }
    for _ in 0..2 {
        assert!(matches!(
            engine.submit(QueryRequest::steiner(id, &names)),
            Err(Rejected::QueueFull)
        ));
    }
    let stats = engine.stats();
    assert_eq!(stats.queue_depth, 3);
    assert_eq!(stats.rejected_full, 2);
}

#[test]
fn pseudo_queries_fan_out_too() {
    let engine = Engine::new(EngineConfig::with_workers(4));
    let schema = generated_schema(3);
    let id = engine.register(schema.clone()).expect("register");
    let objects = span_query(&schema);
    let names: Vec<&str> = objects.iter().map(String::as_str).collect();
    let expected = cold_reference(&schema, &objects, QueryKind::Pseudo(Side::V2));
    std::thread::scope(|scope| {
        for _ in 0..6 {
            let engine = &engine;
            let names = &names;
            let expected = &expected;
            scope.spawn(move || {
                for _ in 0..10 {
                    let got = engine
                        .submit(QueryRequest::pseudo(id, names, Side::V2))
                        .expect("admitted")
                        .wait();
                    match (&got, expected) {
                        (Ok(sol), Ok(want)) => assert_eq!(sol, want),
                        (Err(EngineError::Solve(e)), Err(want)) => assert_eq!(e, want),
                        (got, want) => panic!("mismatch: got {got:?}, want {want:?}"),
                    }
                }
            });
        }
    });
}

#[test]
fn engines_can_share_one_cache() {
    let cache = Arc::new(SchemaArtifactCache::new());
    let a = Engine::with_cache(EngineConfig::with_workers(1), Arc::clone(&cache));
    let b = Engine::with_cache(EngineConfig::with_workers(1), Arc::clone(&cache));
    let schema = generated_schema(13);
    let id = a.register(schema.clone()).expect("register");
    // Engine b sees the registration through the shared cache; no second
    // build happens.
    let objects = span_query(&schema);
    let names: Vec<&str> = objects.iter().map(String::as_str).collect();
    let from_a = a
        .submit(QueryRequest::steiner(id, &names))
        .expect("admitted")
        .wait()
        .expect("a serves");
    let from_b = b
        .submit(QueryRequest::steiner(id, &names))
        .expect("admitted")
        .wait()
        .expect("b serves");
    assert_eq!(from_a, from_b);
    assert_eq!(cache.misses(), 1);
    assert_eq!(cache.hits(), 2);
}

/// A random valid relational schema (mirrors the datamodel suite's
/// strategy): ≤ 6 attributes, ≤ 5 relations, each a nonempty subset.
fn small_schema() -> impl Strategy<Value = RelationalSchema> {
    (2usize..=6)
        .prop_flat_map(|n_attrs| {
            proptest::collection::vec(1u32..(1 << n_attrs), 1..=5)
                .prop_map(move |masks| (n_attrs, masks))
        })
        .prop_map(|(n_attrs, masks)| {
            let attributes: Vec<String> = (0..n_attrs).map(|i| format!("a{i}")).collect();
            let relations = masks
                .iter()
                .enumerate()
                .map(|(i, mask)| Relation {
                    name: format!("R{i}"),
                    attributes: (0..n_attrs).filter(|j| mask & (1 << j) != 0).collect(),
                })
                .collect();
            RelationalSchema {
                name: "prop".into(),
                attributes,
                relations,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cold-vs-warm identity: for any valid schema and any attribute
    /// pair, the engine's cached-artifact answer equals a cold solver's
    /// (same tree, strategy, and cost — or the same error).
    #[test]
    fn cached_artifact_solves_match_cold_solves(
        schema in small_schema(),
        pick in (0usize..100, 0usize..100),
    ) {
        let i = pick.0 % schema.attributes.len();
        let j = pick.1 % schema.attributes.len();
        let objects = vec![schema.attributes[i].clone(), schema.attributes[j].clone()];
        let engine = Engine::new(EngineConfig::with_workers(2));
        let id = engine.register(schema.clone()).expect("register");
        for kind in [QueryKind::Steiner, QueryKind::Pseudo(Side::V2)] {
            let names: Vec<&str> = objects.iter().map(String::as_str).collect();
            let request = match kind {
                QueryKind::Steiner => QueryRequest::steiner(id, &names),
                QueryKind::Pseudo(side) => QueryRequest::pseudo(id, &names, side),
            };
            // Solve twice through the engine: the second is guaranteed
            // warm on some worker.
            let first = engine.submit(request.clone()).expect("admitted").wait();
            let second = engine.submit(request).expect("admitted").wait();
            let cold = cold_reference(&schema, &objects, kind);
            for warm in [&first, &second] {
                match (warm, &cold) {
                    (Ok(sol), Ok(want)) => prop_assert_eq!(sol, want),
                    (Err(EngineError::Solve(e)), Err(want)) => prop_assert_eq!(e, want),
                    (got, want) => prop_assert!(false, "mismatch: got {:?}, want {:?}", got, want),
                }
            }
        }
    }
}
