//! The engine-facing contract of the disk tier: warm starts skip
//! reclassification, degradation is invisible to serving, and — the
//! regression this file exists for — a generation bump (invalidate /
//! replace) racing a `submit_batch` can never cause a stale-generation
//! bundle to be served *from disk* for the new generation.

use mcc_datamodel::RelationalSchema;
use mcc_engine::{ArtifactStore, Engine, EngineConfig, QueryRequest, SchemaArtifactCache};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn test_root(name: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("mcc-store-tier-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// `emp – WORKS_IN – dept – FUNDING – budget`: connecting emp↔budget
/// costs 5 nodes.
fn schema_v1() -> RelationalSchema {
    RelationalSchema::from_lists(
        "hr",
        &["emp", "dept", "budget"],
        &[("WORKS_IN", &[0, 1]), ("FUNDING", &[1, 2])],
    )
}

/// Same object names, different shape: a single relation covers all
/// three attributes, so emp↔budget costs 3 nodes (emp – STAFFING –
/// budget). The cost difference is the version fingerprint the
/// regression test reads off each answer.
fn schema_v2() -> RelationalSchema {
    RelationalSchema::from_lists(
        "hr",
        &["emp", "dept", "budget"],
        &[("STAFFING", &[0, 1, 2])],
    )
}

#[test]
fn warm_start_serves_from_disk_without_reclassifying() {
    let root = test_root("warm-start");

    // First process: cold build, written through to disk.
    {
        let store = Arc::new(ArtifactStore::open(&root));
        let cache = SchemaArtifactCache::with_store(Arc::clone(&store));
        cache.register(schema_v1()).expect("cold registration");
        let stats = store.stats();
        assert_eq!(
            (stats.hits, stats.stores),
            (0, 1),
            "cold start writes through"
        );
    }

    // Second process (same root): the registration is served from disk.
    let store = Arc::new(ArtifactStore::open(&root));
    let cache = SchemaArtifactCache::with_store(Arc::clone(&store));
    let engine = Engine::with_cache(EngineConfig::default(), Arc::new(cache));
    let id = engine.register(schema_v1()).expect("warm registration");
    let ticket = engine
        .submit(QueryRequest::steiner(id, &["emp", "budget"]))
        .expect("admitted");
    assert_eq!(ticket.wait().expect("served").cost, 5);

    let stats = engine.shutdown();
    assert_eq!(stats.store_hits, 1, "the disk tier served the bundle");
    assert_eq!(stats.store_misses, 0);
    assert!(!stats.store_degraded);
    // The slot itself was still cold — the miss is counted, but it was
    // answered by decode + validate, not by a classification pass.
    assert_eq!(stats.cache_misses, 1);
}

#[test]
fn invalidate_forces_a_real_rebuild_not_a_disk_echo() {
    let root = test_root("invalidate-rebuild");
    let store = Arc::new(ArtifactStore::open(&root));
    let cache = SchemaArtifactCache::with_store(Arc::clone(&store));
    let id = cache.register(schema_v1()).expect("register");
    let key = schema_v1().fingerprint();
    assert!(store.contains(key), "write-through on registration");

    assert!(cache.invalidate(id));
    assert!(
        !store.contains(key),
        "invalidate must evict the disk object, or the 'forced rebuild' would be \
         silently answered by the disk tier"
    );
    let got = cache.artifacts(id).expect("rebuild");
    assert_eq!(got.generation, 1);
    assert!(store.contains(key), "the rebuild writes through again");
    let stats = store.stats();
    assert_eq!(
        stats.hits, 0,
        "nothing was ever served from disk in this test"
    );
}

#[test]
fn replace_retargets_the_disk_key() {
    let root = test_root("replace-retarget");
    let store = Arc::new(ArtifactStore::open(&root));
    let cache = SchemaArtifactCache::with_store(Arc::clone(&store));
    let id = cache.register(schema_v1()).expect("register");

    cache.replace(id, schema_v2()).expect("replace");
    let got = cache.artifacts(id).expect("rebuild for generation 1");
    assert_eq!(got.generation, 1);
    // The rebuilt bundle is v2's (one 3-ary relation → 4 nodes), keyed
    // on disk under v2's fingerprint; v1's old object is unreachable
    // from this slot (content-addressed, still valid for v1 itself).
    assert_eq!(got.artifacts.bipartite().graph().node_count(), 4);
    assert!(store.contains(schema_v2().fingerprint()));
}

#[test]
fn degraded_store_keeps_the_memory_tier_serving() {
    // Point the store at an unwritable root (a *file*, so creating the
    // directories fails): it opens straight into degraded memory-only
    // mode and the cache must not care.
    let root = test_root("degraded");
    std::fs::create_dir_all(root.parent().expect("tmp parent")).expect("tmp exists");
    std::fs::write(&root, b"not a directory").expect("occupy the root path");

    let store = Arc::new(ArtifactStore::open(&root));
    assert!(store.is_degraded(), "an unusable root degrades at open");
    let cache = SchemaArtifactCache::with_store(Arc::clone(&store));
    let id = cache
        .register(schema_v1())
        .expect("registration survives a dead disk");
    let got = cache.artifacts(id).expect("memory tier serves");
    assert!(got.artifacts.classification().six_two);
    assert!(cache.store_stats().degraded);
    // Invalidation (disk removal is a no-op in degraded mode) and
    // rebuild keep working.
    assert!(cache.invalidate(id));
    assert!(cache.artifacts(id).is_ok());
    let _ = std::fs::remove_file(&root);
}

/// The regression: hammer `submit_batch` while another thread flips the
/// schema back and forth with `replace`. Every answer must be
/// consistent with *some* version of the schema (cost 5 for v1, 3 for
/// v2) — never an error, never a mix *within* one batch (a batch is
/// served off one artifact fetch) — and the final quiesced batch must
/// reflect the final version. Before invalidate/replace evicted the
/// disk object under the slot lock, a racing rebuilder could reload the
/// pre-bump bundle from disk and serve it for the new generation.
#[test]
fn generation_bump_mid_batch_never_serves_a_stale_disk_artifact() {
    let root = test_root("bump-mid-batch");
    let store = Arc::new(ArtifactStore::open(&root));
    let cache = Arc::new(SchemaArtifactCache::with_store(store));
    let engine = Engine::with_cache(
        EngineConfig {
            workers: 3,
            ..EngineConfig::default()
        },
        Arc::clone(&cache),
    );
    let id = engine.register(schema_v1()).expect("register");

    let stop = Arc::new(AtomicBool::new(false));
    let mutator = {
        let cache = Arc::clone(&cache);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut flips = 0u32;
            while !stop.load(Ordering::Relaxed) {
                let next = if flips % 2 == 0 {
                    schema_v2()
                } else {
                    schema_v1()
                };
                cache.replace(id, next).expect("replace");
                // Interleave pure invalidations: same schema, bumped
                // generation — the disk object for the *current*
                // fingerprint is evicted each time.
                cache.invalidate(id);
                flips += 1;
                std::thread::yield_now();
            }
            // Leave the schema at v1 for the quiesced final batch.
            if flips % 2 == 1 {
                cache.replace(id, schema_v1()).expect("final replace");
            }
        })
    };

    for _ in 0..40 {
        let batch: Vec<QueryRequest> = (0..4)
            .map(|_| QueryRequest::steiner(id, &["emp", "budget"]))
            .collect();
        let (tickets, rejected) = engine.submit_batch(batch);
        assert!(rejected.is_none(), "queue sized for the test load");
        let costs: Vec<usize> = tickets
            .into_iter()
            .map(|t| {
                t.wait()
                    .expect("every version of hr can serve emp↔budget")
                    .cost
            })
            .collect();
        for &c in &costs {
            assert!(
                c == 5 || c == 3,
                "cost {c} matches neither schema version — a stale/garbage bundle was served"
            );
        }
        assert!(
            costs.windows(2).all(|w| w[0] == w[1]),
            "one batch mixed schema versions across members: {costs:?}"
        );
    }

    stop.store(true, Ordering::Relaxed);
    mutator.join().expect("mutator thread");

    // Quiesced: the final version (v1) is what a fresh batch serves.
    let (tickets, _) = engine.submit_batch(vec![
        QueryRequest::steiner(id, &["emp", "budget"]),
        QueryRequest::steiner(id, &["emp", "dept"]),
    ]);
    let final_costs: Vec<usize> = tickets
        .into_iter()
        .map(|t| t.wait().expect("served").cost)
        .collect();
    assert_eq!(final_costs, vec![5, 3], "the final generation must win");
    engine.shutdown();
}
