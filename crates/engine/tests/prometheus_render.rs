//! Byte-determinism of [`EngineStats::render_prometheus`].
//!
//! The render is a pure function of a `Copy` snapshot, so a hand-built
//! snapshot pins the full scrape text — names, `# HELP`/`# TYPE`
//! headers, order, and values — without any concurrency in sight.

use mcc_engine::{EngineStats, ENGINE_METRICS};

fn sample() -> EngineStats {
    EngineStats {
        queue_depth: 4,
        submitted: 100,
        completed: 93,
        solved: 90,
        failed: 3,
        degraded: 7,
        rejected_full: 2,
        rejected_shutdown: 1,
        batches: 6,
        batched_requests: 48,
        cache_hits: 88,
        cache_misses: 5,
        store_hits: 3,
        store_misses: 2,
        store_quarantined: 1,
        store_degraded: true,
    }
}

#[test]
fn render_matches_golden_byte_for_byte() {
    let golden = "\
# HELP mcc_engine_queue_depth Requests admitted but not yet picked up by a worker.
# TYPE mcc_engine_queue_depth gauge
mcc_engine_queue_depth 4
# HELP mcc_engine_submitted_total Requests admitted through the front door.
# TYPE mcc_engine_submitted_total counter
mcc_engine_submitted_total 100
# HELP mcc_engine_completed_total Requests fully served (answer delivered or caller gone).
# TYPE mcc_engine_completed_total counter
mcc_engine_completed_total 93
# HELP mcc_engine_solved_total Served requests that produced a solution.
# TYPE mcc_engine_solved_total counter
mcc_engine_solved_total 90
# HELP mcc_engine_failed_total Served requests that produced an error.
# TYPE mcc_engine_failed_total counter
mcc_engine_failed_total 3
# HELP mcc_engine_degraded_total Solutions that stepped down the degradation ladder.
# TYPE mcc_engine_degraded_total counter
mcc_engine_degraded_total 7
# HELP mcc_engine_rejected_full_total Submissions refused because the queue was at capacity.
# TYPE mcc_engine_rejected_full_total counter
mcc_engine_rejected_full_total 2
# HELP mcc_engine_rejected_shutdown_total Submissions refused because the engine was shutting down.
# TYPE mcc_engine_rejected_shutdown_total counter
mcc_engine_rejected_shutdown_total 1
# HELP mcc_engine_batches_total Same-schema request groups admitted by submit_batch.
# TYPE mcc_engine_batches_total counter
mcc_engine_batches_total 6
# HELP mcc_engine_batched_requests_total Requests admitted as members of batch groups.
# TYPE mcc_engine_batched_requests_total counter
mcc_engine_batched_requests_total 48
# HELP mcc_engine_cache_hits_total Artifact-cache lookups served without schema-level work.
# TYPE mcc_engine_cache_hits_total counter
mcc_engine_cache_hits_total 88
# HELP mcc_engine_cache_misses_total Artifact builds: cold registrations plus rebuilds.
# TYPE mcc_engine_cache_misses_total counter
mcc_engine_cache_misses_total 5
# HELP mcc_engine_store_hits_total Bundles served from the disk tier instead of classification.
# TYPE mcc_engine_store_hits_total counter
mcc_engine_store_hits_total 3
# HELP mcc_engine_store_misses_total Disk-tier lookups that found no valid object.
# TYPE mcc_engine_store_misses_total counter
mcc_engine_store_misses_total 2
# HELP mcc_engine_store_quarantined_total On-disk blobs quarantined after failing validation.
# TYPE mcc_engine_store_quarantined_total counter
mcc_engine_store_quarantined_total 1
# HELP mcc_engine_store_degraded 1 when the disk tier has degraded to memory-only mode.
# TYPE mcc_engine_store_degraded gauge
mcc_engine_store_degraded 1
";
    assert_eq!(sample().render_prometheus(), golden);
}

#[test]
fn metric_table_is_consistent_and_unique() {
    // Every family appears in the render, exactly once, in table order.
    let out = sample().render_prometheus();
    let mut at = 0;
    for (name, kind, _help) in ENGINE_METRICS {
        let pos = out[at..]
            .find(&format!("# TYPE {name} {kind}\n"))
            .unwrap_or_else(|| panic!("family {name} missing or out of order"));
        at += pos + 1;
        assert!(
            kind == "gauge" || name.ends_with("_total"),
            "counter naming convention: {name}"
        );
        assert!(name.starts_with("mcc_engine_"), "engine prefix: {name}");
    }
    // Names are unique.
    let mut names: Vec<_> = ENGINE_METRICS.iter().map(|(n, _, _)| n).collect();
    names.sort();
    names.dedup();
    assert_eq!(names.len(), ENGINE_METRICS.len());
}

#[test]
fn render_into_appends() {
    let mut out = String::from("# prefix\n");
    sample().render_prometheus_into(&mut out);
    assert!(out.starts_with("# prefix\n# HELP mcc_engine_queue_depth"));
}
