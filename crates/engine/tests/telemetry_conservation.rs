//! Telemetry conservation: under concurrent N-worker × M-submitter load,
//! the observability layer must account for *every* request exactly once.
//!
//! The law: each admitted request is popped by exactly one worker, which
//! records exactly one queue-wait sample and one serve-span sample before
//! bumping `completed`. So after a full drain,
//!
//! ```text
//! Δ queue_wait.count == Δ serve.count == stats.completed == stats.submitted
//! ```
//!
//! Rejected requests are never enqueued and must leave no sample. The
//! global registry is process-wide, so this suite lives in its own test
//! binary and measures deltas.
//!
//! These laws only hold with telemetry compiled in; the telemetry-off CI
//! build compiles this file to nothing.
#![cfg(feature = "telemetry")]

use mcc_datamodel::RelationalSchema;
use mcc_engine::{Engine, EngineConfig, QueryRequest};
use mcc_obs::SpanKind;
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

/// The test harness runs `#[test]`s in parallel threads, but both tests
/// below touch the process-global registry (deltas + the kill-switch),
/// so they serialize through this lock.
static SERIAL: Mutex<()> = Mutex::new(());

fn schema() -> RelationalSchema {
    RelationalSchema::from_lists(
        "emp",
        &["emp_id", "name", "dept", "budget"],
        &[("EMP", &[0, 1, 2]), ("DEPT", &[2, 3])],
    )
}

/// Runs one N×M load burst and returns `(stats, Δqueue_wait, Δserve)`.
fn run_load(
    workers: usize,
    submitters: usize,
    per_submitter: usize,
) -> (mcc_engine::EngineStats, u64, u64) {
    let reg = mcc_obs::global();
    let qw0 = reg.stage(SpanKind::QueueWait).count();
    let sv0 = reg.stage(SpanKind::Serve).count();

    let engine = Arc::new(Engine::new(EngineConfig {
        workers,
        // Large enough that no request is rejected: a rejected request
        // must leave no histogram sample, which the equality below
        // checks implicitly (a stray sample would break it).
        queue_capacity: submitters * per_submitter + 1,
        solver: Default::default(),
    }));
    let id = engine.register(schema()).unwrap();

    let handles: Vec<_> = (0..submitters)
        .map(|s| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let tickets: Vec<_> = (0..per_submitter)
                    .map(|i| {
                        let objects: &[&str] = if (s + i) % 2 == 0 {
                            &["name", "budget"]
                        } else {
                            &["emp_id", "dept"]
                        };
                        engine
                            .submit(QueryRequest::steiner(id, objects))
                            .expect("queue sized for the full load")
                    })
                    .collect();
                for t in tickets {
                    t.wait().expect("well-formed query solves");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let engine = Arc::try_unwrap(engine).expect("all clones joined");
    let stats = engine.shutdown();
    let qw1 = reg.stage(SpanKind::QueueWait).count();
    let sv1 = reg.stage(SpanKind::Serve).count();
    (stats, qw1 - qw0, sv1 - sv0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Conservation under racing workers and submitters: histogram
    /// sample counts and the engine's books agree exactly.
    #[test]
    fn queue_wait_samples_equal_completed_requests(
        workers in 1usize..=4,
        submitters in 1usize..=4,
        per_submitter in 5usize..=40,
    ) {
        let _serial = SERIAL.lock().unwrap();
        let expected = (submitters * per_submitter) as u64;
        let (stats, d_queue_wait, d_serve) = run_load(workers, submitters, per_submitter);

        // The engine's own books balance…
        prop_assert_eq!(stats.submitted, expected);
        prop_assert_eq!(stats.completed, expected);
        prop_assert_eq!(stats.solved + stats.failed, expected);
        prop_assert_eq!(stats.failed, 0u64);
        prop_assert_eq!(stats.rejected_full, 0u64);

        // …and telemetry conserves them: one queue-wait sample and one
        // serve sample per completed request, no more, no less.
        prop_assert_eq!(d_queue_wait, stats.completed);
        prop_assert_eq!(d_serve, stats.completed);
    }
}

/// The kill-switch stops sampling but must not corrupt the books: with
/// recording off, the load runs to completion and leaves no samples.
#[test]
fn kill_switch_off_leaves_no_samples_but_books_balance() {
    let _serial = SERIAL.lock().unwrap();
    mcc_obs::set_enabled(false);
    let (stats, d_queue_wait, d_serve) = run_load(2, 2, 10);
    mcc_obs::set_enabled(true);

    assert_eq!(stats.completed, 20);
    assert_eq!(stats.solved, 20);
    assert_eq!(d_queue_wait, 0, "disabled registry must not sample");
    assert_eq!(d_serve, 0, "disabled registry must not sample");
}
