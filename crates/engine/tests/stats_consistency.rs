//! Regression: [`EngineStats`] snapshots must be *consistent* under
//! concurrent load.
//!
//! The original front door bumped `submitted` outside the queue lock,
//! after the push: a fast worker could pop the job, solve it, and bump
//! `solved`/`completed` before the submitter's increment landed, so a
//! concurrent `stats()` scrape could report more outcomes than
//! submissions. The fix (count under the lock, `SeqCst` increments in a
//! fixed per-request order, snapshot loads in the reverse order) makes
//! the invariants below hold in **every** snapshot, not just quiescent
//! ones. This test hammers scrapes while submitters and workers race.

use mcc_datamodel::RelationalSchema;
use mcc_engine::{Engine, EngineConfig, QueryRequest};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn schema() -> RelationalSchema {
    RelationalSchema::from_lists(
        "emp",
        &["emp_id", "name", "dept", "budget"],
        &[("EMP", &[0, 1, 2]), ("DEPT", &[2, 3])],
    )
}

/// Panics if `stats` violates a snapshot invariant.
fn check(stats: &mcc_engine::EngineStats, context: &str) {
    assert!(
        stats.solved + stats.failed <= stats.submitted,
        "{context}: outcomes exceed submissions: {stats}"
    );
    assert!(
        stats.completed <= stats.solved + stats.failed,
        "{context}: completions exceed outcomes: {stats}"
    );
    assert!(
        stats.degraded <= stats.solved,
        "{context}: degraded exceeds solved: {stats}"
    );
}

#[test]
fn mid_load_snapshots_never_overcount_outcomes() {
    let engine = Arc::new(Engine::new(EngineConfig {
        workers: 3,
        queue_capacity: 64,
        solver: Default::default(),
    }));
    let id = engine.register(schema()).unwrap();

    let done = Arc::new(AtomicBool::new(false));

    // Scrapers: hammer stats() the whole time and check every snapshot.
    let scrapers: Vec<_> = (0..2)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut scrapes = 0u64;
                while !done.load(Ordering::Relaxed) {
                    check(&engine.stats(), "mid-load");
                    scrapes += 1;
                }
                scrapes
            })
        })
        .collect();

    // Submitters: small queries, some of them rejected when the queue
    // fills — both paths must keep the books consistent.
    let submitters: Vec<_> = (0..3)
        .map(|_| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let mut tickets = Vec::new();
                for i in 0..400 {
                    let objects: &[&str] = if i % 2 == 0 {
                        &["name", "budget"]
                    } else {
                        &["emp_id", "dept"]
                    };
                    if let Ok(t) = engine.submit(QueryRequest::steiner(id, objects)) {
                        tickets.push(t);
                    }
                    if tickets.len() >= 32 {
                        // Drain periodically so the queue keeps moving.
                        for t in tickets.drain(..) {
                            let _ = t.wait();
                        }
                    }
                }
                for t in tickets {
                    let _ = t.wait();
                }
            })
        })
        .collect();

    for s in submitters {
        s.join().unwrap();
    }
    done.store(true, Ordering::Relaxed);
    for s in scrapers {
        let scrapes = s.join().unwrap();
        assert!(scrapes > 0, "scraper never ran");
    }

    // Post-drain the books balance exactly.
    let engine = Arc::try_unwrap(engine).expect("all clones joined");
    let stats = engine.shutdown();
    check(&stats, "post-drain");
    assert_eq!(
        stats.completed, stats.submitted,
        "drain must answer all: {stats}"
    );
    assert_eq!(stats.solved + stats.failed, stats.submitted, "{stats}");
    assert_eq!(stats.failed, 0, "all queries were well-formed: {stats}");
}
