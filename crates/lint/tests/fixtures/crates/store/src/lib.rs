//! Fixture crate named `store`: persistence-flavoured I/O code. The
//! no-panic rule must catch an unwrap on an `io::Result` — crash-safe
//! storage code is exactly where a panic is least affordable.
#![forbid(unsafe_code)]

use std::path::Path;

/// Violation (no-panic): unwrapping the read of an artifact blob.
pub fn bad_load(path: &Path) -> Vec<u8> {
    std::fs::read(path).unwrap()
}

/// Exempt: propagated I/O errors are the store's contract.
pub fn good_load(path: &Path) -> std::io::Result<Vec<u8>> {
    std::fs::read(path)
}

/// Exempt: the `lint:allow` escape hatch works in store code too.
pub fn allowed_load(path: &Path) -> Vec<u8> {
    // lint:allow(no-panic): fixture exercises the escape hatch.
    std::fs::read(path).unwrap()
}

use std::sync::RwLock;

/// A scope table guarded the way the real store guards its scopes.
pub struct Scopes {
    scopes: RwLock<Vec<String>>,
}

impl Scopes {
    /// Violation (engine-lock-unwrap, and no-panic): an unwrapped read
    /// lock — the rule extends to store code.
    pub fn bad_list(&self) -> usize {
        self.scopes.read().unwrap().len()
    }

    /// Exempt: the typed poison-recovery path.
    pub fn good_list(&self) -> usize {
        self.scopes
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        std::fs::read("/dev/null").unwrap();
    }
}
