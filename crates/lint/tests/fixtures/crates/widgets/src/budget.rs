//! Exempt file: the name contains `budget`, so wall-clock reads are
//! allowed — deadline arithmetic is the one place they belong.

use std::time::Instant;

/// Wall-clock reads are the whole point of budget code.
pub fn now() -> Instant {
    Instant::now()
}
