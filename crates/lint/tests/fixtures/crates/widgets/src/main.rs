//! Fixture binary: the panic and hot-path-alloc rules do not apply to
//! binary entry points.

fn main() {
    println!("{}", std::env::args().next().unwrap());
}
