//! Fixture `src/bin` binary: also exempt from the panic rules.

fn main() {
    Some(1u32).unwrap();
}
