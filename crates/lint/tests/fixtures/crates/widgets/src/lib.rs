//! Fixture crate for the generic rules: one seeded violation per rule
//! plus the matching exemptions. Never compiled — only lexed by the
//! fixture tests, which assert exact file:line:rule locations.
#![forbid(unsafe_code)]

use std::time::Instant;

/// Violation (no-panic): a naked unwrap in non-test library code.
pub fn naked_unwrap(x: Option<u32>) -> u32 {
    x.unwrap()
}

/// Exempt: a justified unwrap.
pub fn justified_unwrap(x: Option<u32>) -> u32 {
    // PROVABLY: every caller in this fixture passes Some.
    x.unwrap()
}

/// Exempt: the escape hatch.
pub fn allowed_panic() {
    // lint:allow(no-panic): fixture exercises the escape hatch.
    panic!("allowed");
}

/// Violation (no-wall-clock): a wall-clock read outside budget code.
pub fn reads_clock() -> Instant {
    Instant::now()
}

/// Exempt: the escape hatch.
pub fn allowed_clock() -> Instant {
    // lint:allow(no-wall-clock): fixture exercises the escape hatch.
    Instant::now()
}

/// Exempt: a justified clock read (the obs clock's epoch seam).
pub fn justified_clock() -> Instant {
    // PROVABLY: monotonic-epoch read, the one sanctioned wall-clock seam.
    Instant::now()
}

/// Violation (hot-path-alloc): an allocation inside a `*_in` hot path.
pub fn fill_in(out: &mut Vec<u32>) {
    let extra: Vec<u32> = Vec::new();
    out.extend(extra);
}

/// Exempt: the same allocation outside a hot path.
pub fn fill(out: &mut Vec<u32>) {
    let extra: Vec<u32> = Vec::new();
    out.extend(extra);
}

/// Violation (hot-path-adjacency): the slow adjacency form in a hot path.
pub fn probe_in(g: &Graph, a: u32, b: u32) -> bool {
    g.has_edge(a, b)
}

/// Exempt: the escape hatch.
pub fn probe_allowed_in(g: &Graph, a: u32, set: &NodeSet) -> bool {
    // lint:allow(hot-path-adjacency): fixture exercises the escape hatch.
    g.adjacent_to_set(a, set)
}

/// Exempt: the same call outside a hot path.
pub fn probe(g: &Graph, a: u32, b: u32) -> bool {
    g.has_edge(a, b)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_in_tests_are_fine() {
        Some(1u32).unwrap();
        let _: Vec<u32> = [1u32].iter().copied().collect();
    }
}
