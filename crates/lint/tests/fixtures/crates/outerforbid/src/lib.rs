//! Fixture crate whose only `forbid(unsafe_code)` is an **outer**
//! attribute on one item — not crate-wide, so the `forbid-unsafe` rule
//! must still report the missing inner attribute at line 1.

#[forbid(unsafe_code)]
mod inner {}
