//! Fixture crate whose lib.rs is missing `#![forbid(unsafe_code)]`
//! entirely — the `forbid-unsafe` rule reports it at line 1.

fn innocuous() {}
