//! Fixture crate named `core`: exercises the crate-scoped
//! `missing-docs` rule. Never compiled — only lexed.
#![forbid(unsafe_code)]

/// Documented: no diagnostic.
pub fn documented() {}

pub fn undocumented() {}

/// Documented struct; its `pub` fields are not items and need no docs.
pub struct Widget {
    pub id: u32,
}

#[doc(hidden)]
pub fn hidden_api() {}

// lint:allow(missing-docs): fixture exercises the escape hatch.
pub fn allowed_undocumented() {}

pub(crate) fn internal() {}
