//! Fixture crate `locks`: one seeded violation per concurrency rule —
//! a lock-order cycle (`a` → `b` in one method, `b` → `a` in another),
//! a `Condvar::wait` outside a predicate loop, and blocking I/O under a
//! held lock, both direct and through a call. Never compiled — only
//! lexed.
#![forbid(unsafe_code)]

use std::sync::{Condvar, Mutex};

/// Two mutexes acquired in both orders: the seeded deadlock cycle.
pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    /// Cycle witness one: `a` then `b`.
    pub fn ab(&self) {
        let _ga = self.a.lock().ok();
        let _gb = self.b.lock().ok();
    }

    /// Cycle witness two: `b` then `a`.
    pub fn ba(&self) {
        let _gb = self.b.lock().ok();
        let _ga = self.a.lock().ok();
    }
}

/// A mutex/condvar pair for the wait-discipline rule.
pub struct Cv {
    m: Mutex<bool>,
    cv: Condvar,
}

impl Cv {
    /// Violation (condvar-discipline): a wait outside a predicate loop.
    pub fn bad_wait(&self) {
        let g = self.m.lock().ok();
        let _ = self.cv.wait(g);
    }

    /// Exempt: the wait sits inside a predicate loop.
    pub fn good_wait(&self) {
        let mut g = self.m.lock().ok();
        while !done(&g) {
            g = self.cv.wait(g).ok();
        }
    }
}

fn done(_g: &Option<bool>) -> bool {
    true
}

/// Violation (blocking-under-lock, direct): disk I/O under the mutex.
pub fn flush_under_lock(p: &Pair, path: &str) {
    let _g = p.a.lock().ok();
    std::fs::write(path, b"x").ok();
}

/// Violation (blocking-under-lock, transitive): the call under the lock
/// reaches disk through `write_blob`.
pub fn save_under_lock(p: &Pair, path: &str) {
    let _g = p.b.lock().ok();
    write_blob(path);
}

/// The blocking leaf the transitive diagnostic chains to.
pub fn write_blob(path: &str) {
    std::fs::write(path, b"blob").ok();
}

/// Exempt: the escape hatch on the call line.
pub fn allowed_save_under_lock(p: &Pair, path: &str) {
    let _g = p.b.lock().ok();
    // lint:allow(blocking-under-lock): fixture exercises the escape hatch.
    write_blob(path);
}
