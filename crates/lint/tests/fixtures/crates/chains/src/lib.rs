//! Fixture crate `chains`: transitive propagation. The panic and the
//! allocation live two calls below their roots, so the diagnostics must
//! carry full root-to-site call chains. Never compiled — only lexed.
#![forbid(unsafe_code)]

/// Root of the seeded no-panic chain: public, panic-free itself.
pub fn entry(x: Option<u32>) -> u32 {
    step_one(x)
}

fn step_one(x: Option<u32>) -> u32 {
    step_two(x)
}

fn step_two(x: Option<u32>) -> u32 {
    x.unwrap()
}

/// Root of the seeded hot-path-alloc chain: a `*_in` hot path whose
/// helper allocates.
pub fn scan_in(out: &mut Vec<u32>) {
    gather(out);
}

fn gather(out: &mut Vec<u32>) {
    let extra: Vec<u32> = Vec::new();
    out.extend(extra);
}

/// Exempt: a chain-break `lint:allow` on the call line prunes the edge,
/// so the helper's panic is not reachable from this root.
pub fn checked_entry(x: Option<u32>) -> u32 {
    // lint:allow(no-panic): fixture exercises the chain-break escape hatch.
    step_broken(x)
}

fn step_broken(x: Option<u32>) -> u32 {
    x.unwrap()
}
