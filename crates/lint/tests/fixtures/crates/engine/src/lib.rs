//! Fixture crate named `engine`: exercises the crate-scoped
//! `engine-lock-unwrap` rule. Never compiled — only lexed.
#![forbid(unsafe_code)]

use std::sync::{Mutex, PoisonError};

/// Violation (engine-lock-unwrap, and no-panic): an unwrapped lock.
pub fn bad_lock(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}

/// Exempt: the typed poison-recovery path this workspace prefers.
pub fn good_lock(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Exempt: both escape hatches on one site.
pub fn allowed_lock(m: &Mutex<u32>) -> u32 {
    // lint:allow(engine-lock-unwrap): fixture exercises the escape hatch.
    // PROVABLY: this fixture is never compiled, let alone poisoned.
    *m.lock().unwrap()
}
