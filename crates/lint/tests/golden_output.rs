//! Machine-readable output is a CI interface: these tests pin the JSON
//! and SARIF bytes for the fixture tree against checked-in golden files,
//! prove the writers are deterministic across runs, round-trip the
//! baseline format end to end, and self-host the linter — the real
//! workspace's `crates/lint` must come out clean without a single
//! `lint:allow` directive in its sources.
//!
//! Regenerate the goldens after an intentional format or fixture change:
//!
//! ```text
//! cargo run -p mcc-lint -- --root crates/lint/tests/fixtures \
//!     --format json  --output crates/lint/tests/golden/fixtures.json
//! cargo run -p mcc-lint -- --root crates/lint/tests/fixtures \
//!     --format sarif --output crates/lint/tests/golden/fixtures.sarif
//! ```

use mcc_lint::{report, run, Config, Diagnostic};
use std::collections::BTreeSet;
use std::path::PathBuf;

fn manifest_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn run_tree(crates_dir: PathBuf) -> Vec<Diagnostic> {
    let config = Config {
        crates_dir,
        allow: BTreeSet::new(),
    };
    run(&config).expect("crate tree is readable")
}

fn run_fixtures() -> Vec<Diagnostic> {
    run_tree(manifest_dir().join("tests/fixtures/crates"))
}

/// The real workspace's `crates/` directory — `crates/lint` is two
/// levels below it, so the parent of this crate's manifest dir is it.
fn workspace_crates_dir() -> PathBuf {
    manifest_dir()
        .parent()
        .expect("crates/lint sits inside crates/")
        .to_path_buf()
}

#[test]
fn machine_reports_are_byte_deterministic_across_runs() {
    let first = run_fixtures();
    let second = run_fixtures();
    assert_eq!(
        report::to_json(&first),
        report::to_json(&second),
        "two runs over the same tree must serialize identically"
    );
    assert_eq!(report::to_sarif(&first), report::to_sarif(&second));
}

#[test]
fn json_output_matches_the_checked_in_golden() {
    let golden = std::fs::read_to_string(manifest_dir().join("tests/golden/fixtures.json"))
        .expect("golden JSON is checked in");
    assert_eq!(
        report::to_json(&run_fixtures()),
        golden,
        "JSON report drifted from tests/golden/fixtures.json — if the \
         change is intentional, regenerate the golden (command in the \
         module doc)"
    );
}

#[test]
fn sarif_output_matches_the_checked_in_golden() {
    let golden = std::fs::read_to_string(manifest_dir().join("tests/golden/fixtures.sarif"))
        .expect("golden SARIF is checked in");
    assert_eq!(
        report::to_sarif(&run_fixtures()),
        golden,
        "SARIF report drifted from tests/golden/fixtures.sarif — if the \
         change is intentional, regenerate the golden (command in the \
         module doc)"
    );
}

#[test]
fn baseline_round_trip_suppresses_every_fixture_diagnostic() {
    let diags = run_fixtures();
    let total = diags.len();
    assert!(total > 0, "fixture tree must seed violations");
    let rendered = report::render_baseline(&diags);
    let accepted = report::parse_baseline(&rendered).expect("rendered baseline parses back");
    let (new, baselined) = report::apply_baseline(diags, &accepted);
    assert!(
        new.is_empty(),
        "a freshly written baseline must accept its own diagnostics; \
         leaked: {new:?}"
    );
    assert_eq!(baselined.len(), total);
}

#[test]
fn the_checked_in_workspace_baseline_is_empty_and_parses() {
    let path = workspace_crates_dir()
        .parent()
        .expect("workspace root")
        .join("lint-baseline.txt");
    let text = std::fs::read_to_string(path).expect("lint-baseline.txt is checked in");
    let accepted = report::parse_baseline(&text).expect("workspace baseline parses");
    assert!(
        accepted.is_empty(),
        "the workspace baseline's goal state is an empty list — new \
         violations should be fixed or lint:allow'd with a reason, not \
         baselined: {accepted:?}"
    );
}

/// Self-hosting: the linter passes over its own crate with **zero**
/// allows — no diagnostic anchored under `crates/lint/`, and no
/// `lint:allow` directive anywhere in its sources (doc comments may
/// *mention* the directive; none may *be* one).
#[test]
fn lint_crate_self_hosts_with_zero_allows() {
    let diags = run_tree(workspace_crates_dir());
    let own: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.file.starts_with("crates/lint/"))
        .collect();
    assert!(own.is_empty(), "mcc-lint flags its own sources: {own:?}");

    let src = manifest_dir().join("src");
    for entry in std::fs::read_dir(&src).expect("src dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("source is readable");
        for (i, line) in text.lines().enumerate() {
            assert!(
                !line.trim_start().starts_with("// lint:allow("),
                "{}:{}: crates/lint must self-host without escape hatches",
                path.display(),
                i + 1
            );
        }
    }
}

/// The deadlock detector's most important property on the real tree:
/// the workspace lock-acquisition graph is acyclic. A cycle here is a
/// potential deadlock and must be re-ordered, never baselined.
#[test]
fn real_workspace_has_no_lock_order_cycles() {
    let diags = run_tree(workspace_crates_dir());
    let cycles: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "lock-order").collect();
    assert!(
        cycles.is_empty(),
        "lock-order cycle in the real workspace: {cycles:?}"
    );
}
