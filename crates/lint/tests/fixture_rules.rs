//! End-to-end fixture tests: a tree of deliberately seeded rule
//! violations under `tests/fixtures/crates/` (never compiled by cargo,
//! never scanned by the real pass) must be reported with exact
//! `file:line` locations, and every exemption mechanism — `lint:allow`
//! on a site, `lint:allow` as a chain-break on a call line, `//
//! PROVABLY:`, `#[cfg(test)]` regions, budget files, binaries, predicate
//! loops, the PoisonError recovery path — must produce *no* diagnostic.

use mcc_lint::{run, Config, Diagnostic};
use std::collections::BTreeSet;
use std::path::PathBuf;

fn fixtures() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/crates")
}

fn run_fixtures(allow: &[&str]) -> Vec<Diagnostic> {
    let config = Config {
        crates_dir: fixtures(),
        allow: allow.iter().map(|s| s.to_string()).collect::<BTreeSet<_>>(),
    };
    run(&config).expect("fixture tree is readable")
}

#[test]
fn seeded_violations_are_reported_with_exact_locations() {
    let diags = run_fixtures(&[]);
    let got: Vec<(&str, usize, &str)> = diags
        .iter()
        .map(|d| (d.file.as_str(), d.line, d.rule))
        .collect();
    // One entry per seeded violation — anything beyond this list would
    // mean an exemption (lint:allow, chain-break allow, PROVABLY,
    // cfg(test), budget file, binary, predicate loop, poison recovery)
    // failed to suppress.
    let expected = vec![
        ("crates/chains/src/lib.rs", 16, "no-panic"),
        ("crates/chains/src/lib.rs", 26, "hot-path-alloc"),
        ("crates/core/src/lib.rs", 8, "missing-docs"),
        ("crates/engine/src/lib.rs", 9, "engine-lock-unwrap"),
        ("crates/engine/src/lib.rs", 9, "no-panic"),
        ("crates/locks/src/lib.rs", 19, "lock-order"),
        ("crates/locks/src/lib.rs", 40, "condvar-discipline"),
        ("crates/locks/src/lib.rs", 59, "blocking-under-lock"),
        ("crates/locks/src/lib.rs", 66, "blocking-under-lock"),
        ("crates/nounsafe/src/lib.rs", 1, "forbid-unsafe"),
        ("crates/outerforbid/src/lib.rs", 1, "forbid-unsafe"),
        ("crates/store/src/lib.rs", 10, "no-panic"),
        ("crates/store/src/lib.rs", 35, "engine-lock-unwrap"),
        ("crates/store/src/lib.rs", 35, "no-panic"),
        ("crates/widgets/src/lib.rs", 10, "no-panic"),
        ("crates/widgets/src/lib.rs", 27, "no-wall-clock"),
        ("crates/widgets/src/lib.rs", 44, "hot-path-alloc"),
        ("crates/widgets/src/lib.rs", 56, "hot-path-adjacency"),
    ];
    assert_eq!(got, expected);
}

#[test]
fn every_rule_fires_on_the_fixture_tree() {
    // The RULES registry and the checks wired in run() are maintained
    // in parallel by hand; this pins them to each other in both
    // directions. A registered rule with no seeded violation means
    // run() dropped it (or the fixture is missing); a diagnostic whose
    // rule is not registered means run() grew a check that --list-rules
    // and the SARIF rules table don't know about.
    let diags = run_fixtures(&[]);
    let fired: BTreeSet<&str> = diags.iter().map(|d| d.rule).collect();
    for rule in mcc_lint::rules::RULES {
        assert!(
            fired.contains(rule.name),
            "rule `{}` has no seeded fixture violation",
            rule.name
        );
    }
    let registered: BTreeSet<&str> = mcc_lint::rules::RULES.iter().map(|r| r.name).collect();
    for rule in fired {
        assert!(
            registered.contains(rule),
            "run() emitted unregistered rule `{rule}`"
        );
    }
}

#[test]
fn diagnostics_render_as_file_line_rule() {
    let diags = run_fixtures(&[]);
    let rendered: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
    assert!(
        rendered
            .iter()
            .any(|s| s.starts_with("crates/nounsafe/src/lib.rs:1: [forbid-unsafe]")),
        "diagnostic rendering drifted: {rendered:?}"
    );
}

#[test]
fn transitive_diagnostics_print_full_call_chains() {
    let diags = run_fixtures(&[]);
    let panic_chain = diags
        .iter()
        .find(|d| d.rule == "no-panic" && d.file == "crates/chains/src/lib.rs")
        .expect("seeded transitive no-panic violation");
    assert!(
        panic_chain.message.contains(
            "call chain: entry (crates/chains/src/lib.rs:8) → \
             step_one (crates/chains/src/lib.rs:12) → step_two"
        ),
        "root-to-site chain missing or drifted: {}",
        panic_chain.message
    );
    let alloc_chain = diags
        .iter()
        .find(|d| d.rule == "hot-path-alloc" && d.file == "crates/chains/src/lib.rs")
        .expect("seeded transitive hot-path-alloc violation");
    assert!(
        alloc_chain
            .message
            .contains("call chain: scan_in (crates/chains/src/lib.rs:22) → gather"),
        "hot-path chain missing or drifted: {}",
        alloc_chain.message
    );
}

#[test]
fn lock_order_cycle_reports_both_witness_chains() {
    let diags = run_fixtures(&[]);
    let cycle = diags
        .iter()
        .find(|d| d.rule == "lock-order")
        .expect("seeded ab/ba cycle");
    assert!(
        cycle.message.contains(
            "lock-order cycle (potential deadlock): `locks::a` → `locks::b` → `locks::a`"
        ),
        "cycle summary drifted: {}",
        cycle.message
    );
    assert!(
        cycle.message.contains(
            "witness `locks::a` → `locks::b`: `Pair::ab` acquires `locks::a` \
             (crates/locks/src/lib.rs:19) then `locks::b` (crates/locks/src/lib.rs:20)"
        ),
        "first witness missing: {}",
        cycle.message
    );
    assert!(
        cycle.message.contains(
            "witness `locks::b` → `locks::a`: `Pair::ba` acquires `locks::b` \
             (crates/locks/src/lib.rs:25) then `locks::a` (crates/locks/src/lib.rs:26)"
        ),
        "second witness missing: {}",
        cycle.message
    );
}

#[test]
fn transitive_blocking_under_lock_chains_to_the_io_leaf() {
    let diags = run_fixtures(&[]);
    let trans = diags
        .iter()
        .find(|d| d.rule == "blocking-under-lock" && d.line == 66)
        .expect("seeded transitive blocking violation");
    assert!(
        trans
            .message
            .contains("`write_blob` — `fs::write` (crates/locks/src/lib.rs:71)"),
        "call path to the I/O leaf missing: {}",
        trans.message
    );
}

#[test]
fn chain_break_allow_prunes_reachability() {
    // `checked_entry` carries a lint:allow on its call line, so the
    // unwrap inside its (otherwise unreachable) helper must not be
    // flagged — but the identical unreachable-helper shape without the
    // directive (`entry` → … → `step_two`) is.
    let diags = run_fixtures(&[]);
    assert!(
        !diags
            .iter()
            .any(|d| d.file == "crates/chains/src/lib.rs" && d.line == 38),
        "chain-break lint:allow failed to prune the pruned helper"
    );
}

#[test]
fn allow_flag_disables_a_rule_wholesale() {
    let diags = run_fixtures(&["no-panic"]);
    assert!(
        diags.iter().all(|d| d.rule != "no-panic"),
        "--allow no-panic must suppress every no-panic diagnostic"
    );
    // Other rules still fire — including the one sharing a line with a
    // suppressed no-panic hit.
    assert!(diags.iter().any(|d| d.rule == "engine-lock-unwrap"));
    assert_eq!(diags.len(), 13);
}
