//! End-to-end fixture tests: a tree of deliberately seeded rule
//! violations under `tests/fixtures/crates/` (never compiled by cargo,
//! never scanned by the real pass) must be reported with exact
//! `file:line` locations, and every exemption mechanism — `lint:allow`,
//! `// PROVABLY:`, `#[cfg(test)]` regions, budget files, binaries —
//! must produce *no* diagnostic.

use mcc_lint::{run, Config};
use std::collections::BTreeSet;
use std::path::PathBuf;

fn fixtures() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/crates")
}

#[test]
fn seeded_violations_are_reported_with_exact_locations() {
    let config = Config {
        crates_dir: fixtures(),
        allow: BTreeSet::new(),
    };
    let diags = run(&config).expect("fixture tree is readable");
    let got: Vec<(&str, usize, &str)> = diags
        .iter()
        .map(|d| (d.file.as_str(), d.line, d.rule))
        .collect();
    // One entry per seeded violation — anything beyond this list would
    // mean an exemption (lint:allow, PROVABLY, cfg(test), budget file,
    // binary) failed to suppress.
    let expected = vec![
        ("crates/core/src/lib.rs", 8, "missing-docs"),
        ("crates/engine/src/lib.rs", 9, "engine-lock-unwrap"),
        ("crates/engine/src/lib.rs", 9, "no-panic"),
        ("crates/nounsafe/src/lib.rs", 1, "forbid-unsafe"),
        ("crates/store/src/lib.rs", 10, "no-panic"),
        ("crates/widgets/src/lib.rs", 10, "no-panic"),
        ("crates/widgets/src/lib.rs", 27, "no-wall-clock"),
        ("crates/widgets/src/lib.rs", 44, "hot-path-alloc"),
        ("crates/widgets/src/lib.rs", 56, "hot-path-adjacency"),
    ];
    assert_eq!(got, expected);
}

#[test]
fn diagnostics_render_as_file_line_rule() {
    let config = Config {
        crates_dir: fixtures(),
        allow: BTreeSet::new(),
    };
    let diags = run(&config).expect("fixture tree is readable");
    let rendered: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
    assert!(
        rendered
            .iter()
            .any(|s| s.starts_with("crates/nounsafe/src/lib.rs:1: [forbid-unsafe]")),
        "diagnostic rendering drifted: {rendered:?}"
    );
}

#[test]
fn allow_flag_disables_a_rule_wholesale() {
    let mut allow = BTreeSet::new();
    allow.insert("no-panic".to_string());
    let config = Config {
        crates_dir: fixtures(),
        allow,
    };
    let diags = run(&config).expect("fixture tree is readable");
    assert!(
        diags.iter().all(|d| d.rule != "no-panic"),
        "--allow no-panic must suppress every no-panic diagnostic"
    );
    // Other rules still fire — including the one sharing a line with a
    // suppressed no-panic hit.
    assert!(diags.iter().any(|d| d.rule == "engine-lock-unwrap"));
    assert_eq!(diags.len(), 6);
}
