//! `mcc-lint` CLI — run the workspace static-analysis pass.
//!
//! ```text
//! mcc-lint [--root DIR] [--allow RULE]... [--list-rules]
//! ```
//!
//! Exit codes: 0 clean, 1 diagnostics reported, 2 usage or I/O error.

use std::collections::BTreeSet;
use std::process::ExitCode;

use mcc_lint::{resolve_root, rules, Config};

fn main() -> ExitCode {
    let mut root: Option<String> = None;
    let mut allow: BTreeSet<String> = BTreeSet::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list-rules" => {
                for (name, desc) in rules::RULES {
                    println!("{name:20} {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(dir) => root = Some(dir),
                None => return usage("--root requires a directory"),
            },
            "--allow" => match args.next() {
                Some(rule) => {
                    if !rules::RULES.iter().any(|(name, _)| *name == rule) {
                        return usage(&format!("unknown rule `{rule}` (see --list-rules)"));
                    }
                    allow.insert(rule);
                }
                None => return usage("--allow requires a rule name"),
            },
            "--help" | "-h" => {
                println!(
                    "mcc-lint [--root DIR] [--allow RULE]... [--list-rules]\n\
                     Workspace static analysis: repo invariants as machine-checked rules."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = resolve_root(root.as_deref());
    let config = Config {
        crates_dir: root.join("crates"),
        allow,
    };
    match mcc_lint::run(&config) {
        Ok(diags) if diags.is_empty() => {
            println!("mcc-lint: clean ({} rules)", rules::RULES.len());
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                eprintln!("{d}");
            }
            eprintln!("mcc-lint: {} violation(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("mcc-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("mcc-lint: {msg}");
    eprintln!("usage: mcc-lint [--root DIR] [--allow RULE]... [--list-rules]");
    ExitCode::from(2)
}
