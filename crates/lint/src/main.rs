//! `mcc-lint` CLI — run the workspace static-analysis pass.
//!
//! ```text
//! mcc-lint [--root DIR] [--allow RULE]... [--format text|json|sarif]
//!          [--output FILE] [--baseline FILE] [--write-baseline FILE]
//!          [--list-rules]
//! ```
//!
//! With `--baseline`, diagnostics listed in the baseline file are
//! accepted: they are excluded from the report and do not fail the run.
//! `--format json|sarif` emits a byte-deterministic machine report (to
//! stdout, or to `--output FILE`); the human summary goes to stderr.
//!
//! Exit codes: 0 clean (after baseline), 1 diagnostics reported, 2
//! usage or I/O error.

use std::collections::BTreeSet;
use std::process::ExitCode;

use mcc_lint::{report, resolve_root, rules, Config, Diagnostic};

/// Output format selection.
enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut root: Option<String> = None;
    let mut allow: BTreeSet<String> = BTreeSet::new();
    let mut format = Format::Text;
    let mut output: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut write_baseline: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list-rules" => {
                for r in rules::RULES {
                    println!("{:20} {}", r.name, r.desc);
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(dir) => root = Some(dir),
                None => return usage("--root requires a directory"),
            },
            "--allow" => match args.next() {
                Some(rule) => {
                    if !rules::RULES.iter().any(|r| r.name == rule) {
                        return usage(&format!("unknown rule `{rule}` (see --list-rules)"));
                    }
                    allow.insert(rule);
                }
                None => return usage("--allow requires a rule name"),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                Some(other) => {
                    return usage(&format!("unknown format `{other}` (text|json|sarif)"))
                }
                None => return usage("--format requires text|json|sarif"),
            },
            "--output" => match args.next() {
                Some(path) => output = Some(path),
                None => return usage("--output requires a file path"),
            },
            "--baseline" => match args.next() {
                Some(path) => baseline = Some(path),
                None => return usage("--baseline requires a file path"),
            },
            "--write-baseline" => match args.next() {
                Some(path) => write_baseline = Some(path),
                None => return usage("--write-baseline requires a file path"),
            },
            "--help" | "-h" => {
                println!(
                    "mcc-lint [--root DIR] [--allow RULE]... [--format text|json|sarif]\n\
                     \x20        [--output FILE] [--baseline FILE] [--write-baseline FILE]\n\
                     \x20        [--list-rules]\n\
                     Workspace static analysis: repo invariants as machine-checked rules."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = resolve_root(root.as_deref());
    let config = Config {
        crates_dir: root.join("crates"),
        allow,
    };
    let diags = match mcc_lint::run(&config) {
        Ok(diags) => diags,
        Err(e) => {
            eprintln!("mcc-lint: error: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = write_baseline {
        let text = report::render_baseline(&diags);
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("mcc-lint: error: writing {path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!(
            "mcc-lint: wrote {} baseline entr(ies) to {path}",
            diags.len()
        );
        return ExitCode::SUCCESS;
    }

    // Apply the baseline: accepted diagnostics neither print nor fail.
    let (diags, accepted) = match baseline {
        Some(path) => {
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("mcc-lint: error: reading {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            let set = match report::parse_baseline(&text) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("mcc-lint: error: {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            report::apply_baseline(diags, &set)
        }
        None => (diags, Vec::new()),
    };

    let rendered = match format {
        Format::Text => None,
        Format::Json => Some(report::to_json(&diags)),
        Format::Sarif => Some(report::to_sarif(&diags)),
    };
    if let Some(body) = rendered {
        match &output {
            Some(path) => {
                if let Err(e) = std::fs::write(path, &body) {
                    eprintln!("mcc-lint: error: writing {path}: {e}");
                    return ExitCode::from(2);
                }
            }
            None => print!("{body}"),
        }
    }

    summarize(&diags, accepted.len(), matches!(format, Format::Text))
}

/// Prints the human-facing summary and picks the exit code.
fn summarize(diags: &[Diagnostic], accepted: usize, text_mode: bool) -> ExitCode {
    let note = if accepted > 0 {
        format!(" ({accepted} baselined)")
    } else {
        String::new()
    };
    if diags.is_empty() {
        eprintln!("mcc-lint: clean ({} rules){note}", rules::RULES.len());
        return ExitCode::SUCCESS;
    }
    if text_mode {
        for d in diags {
            eprintln!("{d}");
        }
    }
    eprintln!("mcc-lint: {} violation(s){note}", diags.len());
    ExitCode::FAILURE
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("mcc-lint: {msg}");
    eprintln!(
        "usage: mcc-lint [--root DIR] [--allow RULE]... [--format text|json|sarif]\n\
         \x20      [--output FILE] [--baseline FILE] [--write-baseline FILE] [--list-rules]"
    );
    ExitCode::from(2)
}
