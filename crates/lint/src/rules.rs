//! The workspace rule catalog: per-file lexical rules plus the
//! interprocedural workspace rules from [`crate::propagate`].
//!
//! [`RULES`] is the single source of truth — [`crate::run`] iterates it
//! directly, `--list-rules`, `--allow` validation, and the SARIF rule
//! table all render from it, so a rule cannot exist without being wired
//! (and vice versa).
//!
//! Scoping conventions shared by the rules:
//!
//! * "library code" excludes binary targets (`src/bin/**`, `src/main.rs`)
//!   — binaries are allowed to be chattier;
//! * test code (`#[cfg(test)]` / `#[test]` regions) is exempt from the
//!   panic, allocation, and doc rules — tests *should* unwrap — and is
//!   excluded from the call graph entirely;
//! * every rule honors the inline `// lint:allow(<rule>)` escape hatch on
//!   the offending line or the comment block directly above it.

use crate::lexer::Analysis;
use crate::propagate;
use crate::{Diagnostic, FileCtx, Workspace};

/// How a rule runs: over each file independently, or once over the
/// resolved workspace (facts + call graph).
pub enum RuleKind {
    /// Per-file lexical rule.
    File(fn(&FileCtx, &Analysis, &mut Vec<Diagnostic>)),
    /// Workspace-scoped interprocedural rule.
    Workspace(fn(&Workspace, &mut Vec<Diagnostic>)),
}

/// One registered rule.
pub struct Rule {
    /// Stable rule name (diagnostic tag, `--allow` key, SARIF ruleId).
    pub name: &'static str,
    /// One-line description.
    pub desc: &'static str,
    /// Execution shape.
    pub kind: RuleKind,
}

/// Every rule, in execution order.
pub const RULES: &[Rule] = &[
    Rule {
        name: "forbid-unsafe",
        desc: "every library crate's lib.rs declares #![forbid(unsafe_code)] \
               as an inner attribute",
        kind: RuleKind::File(forbid_unsafe),
    },
    Rule {
        name: "no-panic",
        desc: "no unwrap()/expect()/panic!/unreachable! reachable from public \
               library code without a // PROVABLY: justification (transitive)",
        kind: RuleKind::Workspace(propagate::no_panic),
    },
    Rule {
        name: "no-wall-clock",
        desc: "no Instant::now()/SystemTime::now() outside CancelToken/budget code \
               without a // PROVABLY: justification (tick discipline)",
        kind: RuleKind::File(no_wall_clock),
    },
    Rule {
        name: "hot-path-alloc",
        desc: "no Vec::new/Box::new/to_vec/collect reachable from *_in functions \
               (zero-alloc hot-path convention, transitive)",
        kind: RuleKind::Workspace(propagate::hot_path_alloc),
    },
    Rule {
        name: "hot-path-adjacency",
        desc: "no .has_edge()/.adjacent_to_set() inside *_in functions — use the \
               word-parallel has_edge_fast/adjacent_to_set_into forms",
        kind: RuleKind::File(hot_path_adjacency),
    },
    Rule {
        name: "engine-lock-unwrap",
        desc: "no lock().unwrap() in crates/{engine,store} — handle PoisonError \
               explicitly",
        kind: RuleKind::File(engine_lock_unwrap),
    },
    Rule {
        name: "missing-docs",
        desc: "every pub item in crates/{core,engine,datamodel,obs,store} carries \
               a doc comment",
        kind: RuleKind::File(missing_docs),
    },
    Rule {
        name: "lock-order",
        desc: "the workspace lock-acquisition order graph is acyclic — any cycle \
               is reported as a potential deadlock with witness chains",
        kind: RuleKind::Workspace(propagate::lock_order),
    },
    Rule {
        name: "blocking-under-lock",
        desc: "no disk I/O or artifact classification reachable while a cache-slot \
               or store lock is held",
        kind: RuleKind::Workspace(propagate::blocking_under_lock),
    },
    Rule {
        name: "condvar-discipline",
        desc: "every Condvar::wait/wait_timeout sits inside a predicate loop \
               (spurious wakeups)",
        kind: RuleKind::Workspace(propagate::condvar_discipline),
    },
];

/// Rule: the crate's `lib.rs` must carry `#![forbid(unsafe_code)]` as an
/// **inner attribute**. A bare `forbid(unsafe_code)` elsewhere — an
/// outer `#[forbid(unsafe_code)]` on one item, a `cfg_attr` branch — is
/// not crate-wide and does not count.
pub fn forbid_unsafe(ctx: &FileCtx, a: &Analysis, out: &mut Vec<Diagnostic>) {
    if !ctx.is_lib_root {
        return;
    }
    let toks = &a.tokens;
    let mut found = false;
    let mut i = 0usize;
    while i + 2 < toks.len() {
        // Inner attribute head: `#` `!` `[`.
        if toks[i].text != "#" || toks[i + 1].text != "!" || toks[i + 2].text != "[" {
            i += 1;
            continue;
        }
        // Collect the attribute body to its matching `]`.
        let mut depth = 0usize;
        let mut j = i + 2;
        let mut body: Vec<&str> = Vec::new();
        while j < toks.len() {
            match toks[j].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                other => body.push(other),
            }
            j += 1;
        }
        if body
            .windows(4)
            .any(|w| w == ["forbid", "(", "unsafe_code", ")"])
        {
            found = true;
            break;
        }
        i = j + 1;
    }
    if !found {
        out.push(ctx.diag(
            0,
            "forbid-unsafe",
            "library crate does not declare #![forbid(unsafe_code)] as an inner \
             attribute in lib.rs",
        ));
    }
}

/// Rule: wall-clock reads are confined to the budget/cancellation
/// layer, or carry a `// PROVABLY:` justification (the observability
/// clock's single monotonic-epoch read is the intended user — see
/// `crates/obs/src/clock.rs`).
pub fn no_wall_clock(ctx: &FileCtx, a: &Analysis, out: &mut Vec<Diagnostic>) {
    // The tick discipline lives in `CancelToken` (crates/graph budget.rs);
    // benches measure wall time by definition.
    if ctx.crate_name == "bench" || ctx.file_name.contains("budget") {
        return;
    }
    let toks = &a.tokens;
    for w in toks.windows(3) {
        let t = &w[0];
        if a.is_test_line(t.line) {
            continue;
        }
        if (t.text == "Instant" || t.text == "SystemTime")
            && w[1].text == "::"
            && w[2].text == "now"
            && !a.provably_at(t.line)
            && !a.allowed_at(t.line, "no-wall-clock")
        {
            out.push(ctx.diag(
                t.line,
                "no-wall-clock",
                &format!(
                    "`{}::now()` outside CancelToken/budget code breaks the tick discipline",
                    t.text
                ),
            ));
        }
    }
}

/// Rule: inside `*_in` hot paths the slow adjacency entry points are
/// forbidden — `.has_edge()` has the O(1) word-probe `has_edge_fast()`
/// and `.adjacent_to_set()` has the allocation-free, word-parallel
/// `adjacent_to_set_into()`. The graph crate itself is exempt: it
/// implements both forms (the fast ones fall back to the slow ones on
/// sparse rows by design).
pub fn hot_path_adjacency(ctx: &FileCtx, a: &Analysis, out: &mut Vec<Diagnostic>) {
    if ctx.is_binary || ctx.crate_name == "graph" {
        return;
    }
    let toks = &a.tokens;
    // `*_in`-function tracking: brace depth plus a pending-signature
    // flag (a `;` at signature level cancels a bodyless trait method).
    let mut stack: Vec<(bool, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut pending: Option<bool> = None;
    let mut sig_depth = 0usize;
    for (i, t) in toks.iter().enumerate() {
        match t.text.as_str() {
            "fn" => {
                if let Some(name) = toks.get(i + 1) {
                    pending = Some(name.text.ends_with("_in"));
                    sig_depth = 0;
                }
            }
            "(" | "[" if pending.is_some() => sig_depth += 1,
            ")" | "]" if pending.is_some() => sig_depth = sig_depth.saturating_sub(1),
            ";" if sig_depth == 0 => pending = None,
            "{" => {
                depth += 1;
                if let Some(hot) = pending.take() {
                    stack.push((hot, depth));
                }
            }
            "}" => {
                if stack.last().is_some_and(|s| s.1 == depth) {
                    stack.pop();
                }
                depth = depth.saturating_sub(1);
            }
            _ => {}
        }
        if !stack.iter().any(|s| s.0) || a.is_test_line(t.line) {
            continue;
        }
        // Method calls only: `.has_edge(` / `.adjacent_to_set(`.
        let fast = match t.text.as_str() {
            "has_edge" => "has_edge_fast",
            "adjacent_to_set" => "adjacent_to_set_into",
            _ => continue,
        };
        let is_call = i > 0
            && toks[i - 1].text == "."
            && toks.get(i + 1).map(|n| n.text.as_str()) == Some("(");
        if is_call && !a.allowed_at(t.line, "hot-path-adjacency") {
            out.push(ctx.diag(
                t.line,
                "hot-path-adjacency",
                &format!(
                    "`.{}()` inside a `*_in` hot path — use the word-parallel `{fast}`",
                    t.text
                ),
            ));
        }
    }
}

/// Rule: in `crates/engine` and `crates/store`, lock acquisition must go
/// through the typed poison-handling path, never `.unwrap()`.
pub fn engine_lock_unwrap(ctx: &FileCtx, a: &Analysis, out: &mut Vec<Diagnostic>) {
    if ctx.crate_name != "engine" && ctx.crate_name != "store" {
        return;
    }
    const LOCKISH: &[&str] = &["lock", "read", "write", "wait", "wait_timeout", "try_lock"];
    let toks = &a.tokens;
    for i in 2..toks.len() {
        if toks[i].text != "unwrap"
            || toks[i - 1].text != "."
            || toks.get(i + 1).map(|n| n.text.as_str()) != Some("(")
        {
            continue;
        }
        if a.is_test_line(toks[i].line) {
            continue;
        }
        // Receiver must be a call: `)` right before the `.`; match back to
        // its `(` and look at the callee name.
        if toks[i - 2].text != ")" {
            continue;
        }
        let mut depth = 0usize;
        let mut j = i - 2;
        let callee = loop {
            match toks[j].text.as_str() {
                ")" => depth += 1,
                "(" => {
                    depth -= 1;
                    if depth == 0 {
                        break j.checked_sub(1);
                    }
                }
                _ => {}
            }
            if j == 0 {
                break None;
            }
            j -= 1;
        };
        if let Some(k) = callee {
            let name = toks[k].text.as_str();
            // Method calls only: `guard.read().unwrap()` acquires a lock,
            // `fs::read(path).unwrap()` does not (that's the no-panic
            // rule's jurisdiction).
            let is_method = k > 0 && toks[k - 1].text == ".";
            if is_method
                && LOCKISH.contains(&name)
                && !a.allowed_at(toks[i].line, "engine-lock-unwrap")
            {
                out.push(ctx.diag(
                    toks[i].line,
                    "engine-lock-unwrap",
                    &format!(
                        "`{name}().unwrap()` in crates/{} — use the PoisonError \
                         recovery path (unwrap_or_else(PoisonError::into_inner))",
                        ctx.crate_name
                    ),
                ));
            }
        }
    }
}

/// Rule: public API in the user-facing crates must be documented.
pub fn missing_docs(ctx: &FileCtx, a: &Analysis, out: &mut Vec<Diagnostic>) {
    if ctx.is_binary
        || !matches!(
            ctx.crate_name.as_str(),
            "core" | "engine" | "datamodel" | "obs" | "store"
        )
    {
        return;
    }
    // Item keywords that can follow `pub` (modifiers like async/unsafe/
    // extern/const fold in: whatever follows is still an item head).
    const ITEM: &[&str] = &[
        "fn", "struct", "enum", "trait", "const", "static", "type", "mod", "union", "async",
        "unsafe", "extern",
    ];
    let toks = &a.tokens;
    let sanitized_lines: Vec<&str> = a.sanitized.split('\n').collect();
    for i in 0..toks.len() {
        if toks[i].text != "pub" {
            continue;
        }
        let line = toks[i].line;
        if a.is_test_line(line) || a.allowed_at(line, "missing-docs") {
            continue;
        }
        let Some(next) = toks.get(i + 1) else {
            continue;
        };
        // `pub(crate)` / `pub(super)` are not public API; `pub use`
        // re-exports inherit the original item's docs.
        if next.text == "(" || next.text == "use" {
            continue;
        }
        if !ITEM.contains(&next.text.as_str()) {
            continue; // struct fields (`pub name:`) and the like
        }
        // Walk upward over the item's attributes and doc comments; finding
        // any doc line (or a #[doc(...)] attribute) satisfies the rule.
        let mut documented = a.lines[line].doc;
        let mut hidden = false;
        let mut l = line;
        while l > 0 {
            let info = &a.lines[l - 1];
            if info.doc {
                documented = true;
            } else if info.attr {
                let text = sanitized_lines.get(l - 1).copied().unwrap_or("");
                if text.contains("doc") {
                    documented = true;
                    if text.contains("hidden") {
                        hidden = true;
                    }
                }
            } else {
                break;
            }
            l -= 1;
        }
        if !documented && !hidden {
            out.push(ctx.diag(
                line,
                "missing-docs",
                &format!(
                    "undocumented `pub {}` — public API in {} requires a doc comment",
                    next.text, ctx.crate_name
                ),
            ));
        }
    }
}
