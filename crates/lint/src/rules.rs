//! The seven workspace rules, each a pure function from a lexed file (or
//! crate) to diagnostics.
//!
//! Scoping conventions shared by the rules:
//!
//! * "library code" excludes binary targets (`src/bin/**`, `src/main.rs`)
//!   — binaries are allowed to be chattier;
//! * test code (`#[cfg(test)]` / `#[test]` regions) is exempt from the
//!   panic, allocation, and doc rules — tests *should* unwrap;
//! * every rule honors the inline `// lint:allow(<rule>)` escape hatch on
//!   the offending line or the comment block directly above it.

use crate::lexer::Analysis;
use crate::{Diagnostic, FileCtx};

/// Rule names, in the order rules run. Kept in one place so `--allow`
/// validation and `--list-rules` stay in sync with the implementations.
pub const RULES: &[(&str, &str)] = &[
    (
        "forbid-unsafe",
        "every library crate's lib.rs declares #![forbid(unsafe_code)]",
    ),
    (
        "no-panic",
        "no unwrap()/expect()/panic!/unreachable! in non-test library code \
         without a // PROVABLY: justification",
    ),
    (
        "no-wall-clock",
        "no Instant::now()/SystemTime::now() outside CancelToken/budget code \
         without a // PROVABLY: justification (tick discipline)",
    ),
    (
        "hot-path-alloc",
        "no Vec::new/Box::new/to_vec/collect inside *_in functions \
         (zero-alloc hot-path convention)",
    ),
    (
        "hot-path-adjacency",
        "no .has_edge()/.adjacent_to_set() inside *_in functions — use the \
         word-parallel has_edge_fast/adjacent_to_set_into forms",
    ),
    (
        "engine-lock-unwrap",
        "no lock().unwrap() in crates/engine — handle PoisonError explicitly",
    ),
    (
        "missing-docs",
        "every pub item in crates/{core,engine,datamodel} carries a doc comment",
    ),
];

/// Rule 1: the crate's `lib.rs` must carry `#![forbid(unsafe_code)]`.
///
/// Runs once per crate (on `lib.rs` only); crates without a `lib.rs`
/// (pure binaries) are skipped by the caller.
pub fn forbid_unsafe(ctx: &FileCtx, a: &Analysis, out: &mut Vec<Diagnostic>) {
    let toks = &a.tokens;
    let found = toks.windows(4).any(|w| {
        w[0].text == "forbid" && w[1].text == "(" && w[2].text == "unsafe_code" && w[3].text == ")"
    });
    if !found {
        out.push(ctx.diag(
            0,
            "forbid-unsafe",
            "library crate does not declare #![forbid(unsafe_code)] in lib.rs",
        ));
    }
}

/// Rule 2: panicking constructs need a `// PROVABLY:` justification.
pub fn no_panic(ctx: &FileCtx, a: &Analysis, out: &mut Vec<Diagnostic>) {
    if ctx.is_binary {
        return;
    }
    let toks = &a.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if a.is_test_line(t.line) {
            continue;
        }
        let hit = match t.text.as_str() {
            // `.unwrap(` / `.expect(` — method calls only, so idents named
            // e.g. `expect` in other positions don't trip the rule.
            "unwrap" | "expect" => {
                i > 0
                    && toks[i - 1].text == "."
                    && toks.get(i + 1).map(|n| n.text.as_str()) == Some("(")
            }
            // `panic!` / `unreachable!` — macro invocations only, so
            // `std::panic::catch_unwind` stays legal.
            "panic" | "unreachable" => toks.get(i + 1).map(|n| n.text.as_str()) == Some("!"),
            _ => false,
        };
        if hit && !a.provably_at(t.line) && !a.allowed_at(t.line, "no-panic") {
            out.push(ctx.diag(
                t.line,
                "no-panic",
                &format!(
                    "`{}` in non-test library code without a // PROVABLY: justification",
                    t.text
                ),
            ));
        }
    }
}

/// Rule 3: wall-clock reads are confined to the budget/cancellation
/// layer, or carry a `// PROVABLY:` justification (the observability
/// clock's single monotonic-epoch read is the intended user — see
/// `crates/obs/src/clock.rs`).
pub fn no_wall_clock(ctx: &FileCtx, a: &Analysis, out: &mut Vec<Diagnostic>) {
    // The tick discipline lives in `CancelToken` (crates/graph budget.rs);
    // benches measure wall time by definition.
    if ctx.crate_name == "bench" || ctx.file_name.contains("budget") {
        return;
    }
    let toks = &a.tokens;
    for w in toks.windows(3) {
        let t = &w[0];
        if a.is_test_line(t.line) {
            continue;
        }
        if (t.text == "Instant" || t.text == "SystemTime")
            && w[1].text == "::"
            && w[2].text == "now"
            && !a.provably_at(t.line)
            && !a.allowed_at(t.line, "no-wall-clock")
        {
            out.push(ctx.diag(
                t.line,
                "no-wall-clock",
                &format!(
                    "`{}::now()` outside CancelToken/budget code breaks the tick discipline",
                    t.text
                ),
            ));
        }
    }
}

/// Rule 4: functions named `*_in` are the zero-alloc hot paths — no
/// allocating calls inside them.
pub fn hot_path_alloc(ctx: &FileCtx, a: &Analysis, out: &mut Vec<Diagnostic>) {
    if ctx.is_binary {
        return;
    }
    let toks = &a.tokens;
    // Stack of (fn-name-is-hot, brace-depth-at-body-open); we flag
    // allocations whenever any enclosing fn is a `*_in`.
    let mut stack: Vec<(bool, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut pending: Option<bool> = None; // saw `fn name`, waiting for its `{`
    let mut sig_depth = 0usize; // paren/bracket nesting inside the signature
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t.text.as_str() {
            "fn" => {
                if let Some(name) = toks.get(i + 1) {
                    pending = Some(name.text.ends_with("_in"));
                    sig_depth = 0;
                }
            }
            "(" | "[" if pending.is_some() => sig_depth += 1,
            ")" | "]" if pending.is_some() => sig_depth = sig_depth.saturating_sub(1),
            // A `;` at signature level before the body terminates the
            // item (trait method declarations); `;` inside parens or
            // brackets (array types like `[u32; 4]`) does not.
            ";" if sig_depth == 0 => pending = None,
            "{" => {
                depth += 1;
                if let Some(hot) = pending.take() {
                    stack.push((hot, depth));
                }
            }
            "}" => {
                if stack.last().is_some_and(|s| s.1 == depth) {
                    stack.pop();
                }
                depth = depth.saturating_sub(1);
            }
            _ => {}
        }
        let in_hot = stack.iter().any(|s| s.0);
        if in_hot && !a.is_test_line(t.line) {
            let alloc = match t.text.as_str() {
                "Vec" | "Box" => {
                    toks.get(i + 1).map(|n| n.text.as_str()) == Some("::")
                        && toks.get(i + 2).map(|n| n.text.as_str()) == Some("new")
                }
                "to_vec" | "collect" => i > 0 && toks[i - 1].text == ".",
                _ => false,
            };
            if alloc && !a.allowed_at(t.line, "hot-path-alloc") {
                let what = match t.text.as_str() {
                    "Vec" | "Box" => format!("{}::new", t.text),
                    other => other.to_string(),
                };
                out.push(ctx.diag(
                    t.line,
                    "hot-path-alloc",
                    &format!("`{what}` allocates inside a `*_in` zero-alloc hot path"),
                ));
                // Skip the `::new` tokens so one call yields one diagnostic.
                if t.text == "Vec" || t.text == "Box" {
                    i += 2;
                }
            }
        }
        i += 1;
    }
}

/// Rule 5: inside `*_in` hot paths the slow adjacency entry points are
/// forbidden — `.has_edge()` has the O(1) word-probe `has_edge_fast()`
/// and `.adjacent_to_set()` has the allocation-free, word-parallel
/// `adjacent_to_set_into()`. The graph crate itself is exempt: it
/// implements both forms (the fast ones fall back to the slow ones on
/// sparse rows by design).
pub fn hot_path_adjacency(ctx: &FileCtx, a: &Analysis, out: &mut Vec<Diagnostic>) {
    if ctx.is_binary || ctx.crate_name == "graph" {
        return;
    }
    let toks = &a.tokens;
    // Same `*_in`-function tracking as `hot_path_alloc` (see there for
    // the signature/brace bookkeeping).
    let mut stack: Vec<(bool, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut pending: Option<bool> = None;
    let mut sig_depth = 0usize;
    for (i, t) in toks.iter().enumerate() {
        match t.text.as_str() {
            "fn" => {
                if let Some(name) = toks.get(i + 1) {
                    pending = Some(name.text.ends_with("_in"));
                    sig_depth = 0;
                }
            }
            "(" | "[" if pending.is_some() => sig_depth += 1,
            ")" | "]" if pending.is_some() => sig_depth = sig_depth.saturating_sub(1),
            ";" if sig_depth == 0 => pending = None,
            "{" => {
                depth += 1;
                if let Some(hot) = pending.take() {
                    stack.push((hot, depth));
                }
            }
            "}" => {
                if stack.last().is_some_and(|s| s.1 == depth) {
                    stack.pop();
                }
                depth = depth.saturating_sub(1);
            }
            _ => {}
        }
        if !stack.iter().any(|s| s.0) || a.is_test_line(t.line) {
            continue;
        }
        // Method calls only: `.has_edge(` / `.adjacent_to_set(`.
        let fast = match t.text.as_str() {
            "has_edge" => "has_edge_fast",
            "adjacent_to_set" => "adjacent_to_set_into",
            _ => continue,
        };
        let is_call = i > 0
            && toks[i - 1].text == "."
            && toks.get(i + 1).map(|n| n.text.as_str()) == Some("(");
        if is_call && !a.allowed_at(t.line, "hot-path-adjacency") {
            out.push(ctx.diag(
                t.line,
                "hot-path-adjacency",
                &format!(
                    "`.{}()` inside a `*_in` hot path — use the word-parallel `{fast}`",
                    t.text
                ),
            ));
        }
    }
}

/// Rule 6: in `crates/engine`, lock acquisition must go through the typed
/// poison-handling path, never `.unwrap()`.
pub fn engine_lock_unwrap(ctx: &FileCtx, a: &Analysis, out: &mut Vec<Diagnostic>) {
    if ctx.crate_name != "engine" {
        return;
    }
    const LOCKISH: &[&str] = &["lock", "read", "write", "wait", "wait_timeout", "try_lock"];
    let toks = &a.tokens;
    for i in 2..toks.len() {
        if toks[i].text != "unwrap"
            || toks[i - 1].text != "."
            || toks.get(i + 1).map(|n| n.text.as_str()) != Some("(")
        {
            continue;
        }
        if a.is_test_line(toks[i].line) {
            continue;
        }
        // Receiver must be a call: `)` right before the `.`; match back to
        // its `(` and look at the callee name.
        if toks[i - 2].text != ")" {
            continue;
        }
        let mut depth = 0usize;
        let mut j = i - 2;
        let callee = loop {
            match toks[j].text.as_str() {
                ")" => depth += 1,
                "(" => {
                    depth -= 1;
                    if depth == 0 {
                        break j.checked_sub(1).map(|k| toks[k].text.as_str());
                    }
                }
                _ => {}
            }
            if j == 0 {
                break None;
            }
            j -= 1;
        };
        if let Some(name) = callee {
            if LOCKISH.contains(&name) && !a.allowed_at(toks[i].line, "engine-lock-unwrap") {
                out.push(ctx.diag(
                    toks[i].line,
                    "engine-lock-unwrap",
                    &format!(
                        "`{name}().unwrap()` in crates/engine — use the PoisonError \
                         recovery path (unwrap_or_else(PoisonError::into_inner))"
                    ),
                ));
            }
        }
    }
}

/// Rule 7: public API in the user-facing crates must be documented.
pub fn missing_docs(ctx: &FileCtx, a: &Analysis, out: &mut Vec<Diagnostic>) {
    if ctx.is_binary || !matches!(ctx.crate_name.as_str(), "core" | "engine" | "datamodel") {
        return;
    }
    // Item keywords that can follow `pub` (modifiers like async/unsafe/
    // extern/const fold in: whatever follows is still an item head).
    const ITEM: &[&str] = &[
        "fn", "struct", "enum", "trait", "const", "static", "type", "mod", "union", "async",
        "unsafe", "extern",
    ];
    let toks = &a.tokens;
    let sanitized_lines: Vec<&str> = a.sanitized.split('\n').collect();
    for i in 0..toks.len() {
        if toks[i].text != "pub" {
            continue;
        }
        let line = toks[i].line;
        if a.is_test_line(line) || a.allowed_at(line, "missing-docs") {
            continue;
        }
        let Some(next) = toks.get(i + 1) else {
            continue;
        };
        // `pub(crate)` / `pub(super)` are not public API; `pub use`
        // re-exports inherit the original item's docs.
        if next.text == "(" || next.text == "use" {
            continue;
        }
        if !ITEM.contains(&next.text.as_str()) {
            continue; // struct fields (`pub name:`) and the like
        }
        // Walk upward over the item's attributes and doc comments; finding
        // any doc line (or a #[doc(...)] attribute) satisfies the rule.
        let mut documented = a.lines[line].doc;
        let mut hidden = false;
        let mut l = line;
        while l > 0 {
            let info = &a.lines[l - 1];
            if info.doc {
                documented = true;
            } else if info.attr {
                let text = sanitized_lines.get(l - 1).copied().unwrap_or("");
                if text.contains("doc") {
                    documented = true;
                    if text.contains("hidden") {
                        hidden = true;
                    }
                }
            } else {
                break;
            }
            l -= 1;
        }
        if !documented && !hidden {
            out.push(ctx.diag(
                line,
                "missing-docs",
                &format!(
                    "undocumented `pub {}` — public API in {} requires a doc comment",
                    next.text, ctx.crate_name
                ),
            ));
        }
    }
}
