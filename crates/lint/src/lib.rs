//! `mcc-lint`: the workspace's project-specific static-analysis pass.
//!
//! Clippy and rustc enforce language-level hygiene; this crate enforces
//! *repo*-level invariants that no general-purpose tool knows about —
//! the tick discipline for wall-clock reads, the `*_in` zero-alloc
//! hot-path convention, the engine's typed poison-handling requirement,
//! the lock-acquisition order across `engine`/`store`, and the
//! `// PROVABLY:` justification protocol for panicking calls.
//!
//! The pass runs in two phases. Per-file lexical rules work straight off
//! the [`lexer`] token stream. The interprocedural rules build a
//! [`facts::FactDb`] (per-function calls, lock acquisitions, panics,
//! allocations, blocking I/O), resolve a workspace [`callgraph`], and
//! run fixed-point [`propagate`] analyses on top — so `no-panic` and
//! `hot-path-alloc` see through function boundaries, and `lock-order`/
//! `blocking-under-lock`/`condvar-discipline` reason about what happens
//! while a lock is held anywhere downstream.
//!
//! The pass is intentionally lexical: it never typechecks and never
//! needs the network, so it runs in milliseconds on a bare toolchain
//! and CI can gate on it before anything else builds. Output is
//! byte-deterministic in every format (see [`report`]).

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod callgraph;
pub mod facts;
pub mod lexer;
pub mod propagate;
pub mod report;
pub mod rules;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// One finding: a rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path relative to the workspace root (e.g. `crates/core/src/solver.rs`).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule name (one of [`rules::RULES`]).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Per-file context handed to each rule.
pub struct FileCtx {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// The crate directory name (e.g. `engine` for `crates/engine`).
    pub crate_name: String,
    /// Final path component (e.g. `budget.rs`).
    pub file_name: String,
    /// Whether the file belongs to a binary target (`src/bin/**` or
    /// `src/main.rs`).
    pub is_binary: bool,
    /// Whether this file is the crate's `lib.rs`.
    pub is_lib_root: bool,
}

impl FileCtx {
    /// Builds a diagnostic at 0-based `line` (stored 1-based).
    pub fn diag(&self, line: usize, rule: &'static str, message: &str) -> Diagnostic {
        Diagnostic {
            file: self.rel_path.clone(),
            line: line + 1,
            rule,
            message: message.to_string(),
        }
    }
}

/// One loaded source file: its context plus its lexical analysis.
pub struct SourceFile {
    /// File identity and scoping.
    pub ctx: FileCtx,
    /// Token stream, sanitized text, and per-line directives.
    pub analysis: lexer::Analysis,
}

/// The fully-analyzed workspace handed to interprocedural rules.
pub struct Workspace {
    /// Every `crates/*/src` file, in sorted walk order.
    pub files: Vec<SourceFile>,
    /// Per-function facts and declared locks.
    pub facts: facts::FactDb,
    /// The resolved call graph over [`Workspace::facts`].
    pub graph: callgraph::CallGraph,
    /// Index from workspace-relative path to `files` position.
    by_path: BTreeMap<String, usize>,
}

impl Workspace {
    /// Whether `lint:allow(rule)` covers `line` (0-based) of `file`.
    pub fn allowed_at(&self, file: &str, line: usize, rule: &str) -> bool {
        self.by_path
            .get(file)
            .is_some_and(|&i| self.files[i].analysis.allowed_at(line, rule))
    }
}

/// What to run and what to suppress.
pub struct Config {
    /// Directory containing the crate subdirectories (normally
    /// `<workspace>/crates`).
    pub crates_dir: PathBuf,
    /// Rules disabled wholesale via `--allow`.
    pub allow: BTreeSet<String>,
}

/// Loads every `crates/*/src/**/*.rs` file under `crates_dir`.
pub fn load_workspace(crates_dir: &Path) -> Result<Workspace, String> {
    let mut files = Vec::new();
    let mut crates: Vec<PathBuf> = read_dir_sorted(crates_dir)?
        .into_iter()
        .filter(|p| p.is_dir())
        .collect();
    crates.sort();
    for krate in &crates {
        let src = krate.join("src");
        if !src.is_dir() {
            continue;
        }
        let crate_name = file_name_of(krate);
        let mut paths = Vec::new();
        collect_rs_files(&src, &mut paths)?;
        paths.sort();
        let has_lib = src.join("lib.rs").is_file();
        for path in &paths {
            let text =
                fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
            let analysis = lexer::analyze(&text);
            let ctx = file_ctx(path, crates_dir, &crate_name, has_lib);
            files.push(SourceFile { ctx, analysis });
        }
    }
    let mut deps: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for krate in &crates {
        let manifest = krate.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            deps.insert(file_name_of(krate), manifest_deps(&text));
        }
    }
    transitive_close(&mut deps);
    let facts = facts::extract(&files);
    let graph = callgraph::build(&facts, &deps);
    let by_path = files
        .iter()
        .enumerate()
        .map(|(i, f)| (f.ctx.rel_path.clone(), i))
        .collect();
    Ok(Workspace {
        files,
        facts,
        graph,
        by_path,
    })
}

/// Runs every enabled rule over the workspace under `config.crates_dir`.
/// Diagnostics come back sorted by (file, line, rule). I/O errors
/// (unreadable dirs/files) are reported as `Err`.
pub fn run(config: &Config) -> Result<Vec<Diagnostic>, String> {
    let ws = load_workspace(&config.crates_dir)?;
    let mut out = Vec::new();
    for rule in rules::RULES {
        if config.allow.contains(rule.name) {
            continue;
        }
        match rule.kind {
            rules::RuleKind::File(f) => {
                for sf in &ws.files {
                    f(&sf.ctx, &sf.analysis, &mut out);
                }
            }
            rules::RuleKind::Workspace(f) => f(&ws, &mut out),
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out.dedup();
    Ok(out)
}

/// Parses the `[dependencies]` table of one crate manifest for
/// workspace-internal deps (`mcc` is the `core` crate directory;
/// `mcc-foo` is `foo`). Dev-dependencies are excluded on purpose: the
/// call graph only covers non-test code.
fn manifest_deps(text: &str) -> BTreeSet<String> {
    let mut deps = BTreeSet::new();
    let mut in_deps = false;
    for line in text.lines() {
        let l = line.trim();
        if l.starts_with('[') {
            in_deps = l == "[dependencies]";
            continue;
        }
        if !in_deps {
            continue;
        }
        let Some(name) = l.split(['.', ' ', '=']).next() else {
            continue;
        };
        if name == "mcc" {
            deps.insert("core".to_string());
        } else if let Some(rest) = name.strip_prefix("mcc-") {
            deps.insert(rest.to_string());
        }
    }
    deps
}

/// Closes the dependency map under transitivity (a → b → c means a
/// sees c's items through re-exports and returned types).
fn transitive_close(deps: &mut BTreeMap<String, BTreeSet<String>>) {
    let names: Vec<String> = deps.keys().cloned().collect();
    loop {
        let mut changed = false;
        for name in &names {
            let direct: Vec<String> = deps
                .get(name)
                .map(|d| d.iter().cloned().collect())
                .unwrap_or_default();
            let mut add: BTreeSet<String> = BTreeSet::new();
            for d in &direct {
                if let Some(dd) = deps.get(d) {
                    add.extend(dd.iter().cloned());
                }
            }
            if let Some(set) = deps.get_mut(name) {
                let before = set.len();
                set.extend(add);
                changed |= set.len() != before;
            }
        }
        if !changed {
            break;
        }
    }
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let rd = fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    let mut entries = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        entries.push(entry.path());
    }
    entries.sort();
    Ok(entries)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for path in read_dir_sorted(dir)? {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn file_name_of(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default()
}

fn file_ctx(path: &Path, crates_dir: &Path, crate_name: &str, has_lib: bool) -> FileCtx {
    let rel = path.strip_prefix(crates_dir).unwrap_or(path);
    let rel_path = {
        let mut s = String::from("crates");
        for comp in rel.components() {
            s.push('/');
            s.push_str(&comp.as_os_str().to_string_lossy());
        }
        s
    };
    let file_name = file_name_of(path);
    let is_binary = rel_path.contains("/src/bin/") || file_name == "main.rs";
    let is_lib_root = has_lib && file_name == "lib.rs" && !is_binary;
    FileCtx {
        rel_path,
        crate_name: crate_name.to_string(),
        file_name,
        is_binary,
        is_lib_root,
    }
}

/// Resolves the workspace root: an explicit `--root`, else the nearest
/// ancestor of `cwd` holding a `Cargo.toml` with a `[workspace]` table,
/// else the compile-time location of this crate's workspace.
pub fn resolve_root(explicit: Option<&str>) -> PathBuf {
    if let Some(root) = explicit {
        return PathBuf::from(root);
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir;
                }
            }
        }
        if !dir.pop() {
            break;
        }
    }
    // Fallback: crates/lint/../..
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .components()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostics_render_as_file_line_rule() {
        let d = Diagnostic {
            file: "crates/core/src/solver.rs".into(),
            line: 42,
            rule: "no-panic",
            message: "boom".into(),
        };
        assert_eq!(
            d.to_string(),
            "crates/core/src/solver.rs:42: [no-panic] boom"
        );
    }

    #[test]
    fn resolve_root_finds_this_workspace() {
        let root = resolve_root(None);
        assert!(root.join("Cargo.toml").is_file());
        assert!(root.join("crates/lint").is_dir());
    }
}
