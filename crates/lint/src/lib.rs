//! `mcc-lint`: the workspace's project-specific static-analysis pass.
//!
//! Clippy and rustc enforce language-level hygiene; this crate enforces
//! *repo*-level invariants that no general-purpose tool knows about —
//! the tick discipline for wall-clock reads, the `*_in` zero-alloc
//! hot-path convention, the engine's typed poison-handling requirement,
//! and the `// PROVABLY:` justification protocol for panicking calls.
//! Each rule is individually `--allow`-able and has an inline
//! `// lint:allow(<rule>)` escape hatch; see [`rules::RULES`] for the
//! catalog.
//!
//! The pass is intentionally lexical (see [`lexer`]): it never typechecks
//! and never needs the network, so it runs in milliseconds on a bare
//! toolchain and CI can gate on it before anything else builds.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod lexer;
pub mod rules;

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// One finding: a rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path relative to the workspace root (e.g. `crates/core/src/solver.rs`).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule name (one of [`rules::RULES`]).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Per-file context handed to each rule.
pub struct FileCtx {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// The crate directory name (e.g. `engine` for `crates/engine`).
    pub crate_name: String,
    /// Final path component (e.g. `budget.rs`).
    pub file_name: String,
    /// Whether the file belongs to a binary target (`src/bin/**` or
    /// `src/main.rs`).
    pub is_binary: bool,
}

impl FileCtx {
    /// Builds a diagnostic at 0-based `line` (stored 1-based).
    pub fn diag(&self, line: usize, rule: &'static str, message: &str) -> Diagnostic {
        Diagnostic {
            file: self.rel_path.clone(),
            line: line + 1,
            rule,
            message: message.to_string(),
        }
    }
}

/// What to run and what to suppress.
pub struct Config {
    /// Directory containing the crate subdirectories (normally
    /// `<workspace>/crates`).
    pub crates_dir: PathBuf,
    /// Rules disabled wholesale via `--allow`.
    pub allow: BTreeSet<String>,
}

/// Runs every enabled rule over every `crates/*/src` file under
/// `config.crates_dir`. Diagnostics come back sorted by (file, line,
/// rule). I/O errors (unreadable dirs/files) are reported as `Err`.
pub fn run(config: &Config) -> Result<Vec<Diagnostic>, String> {
    let mut out = Vec::new();
    let mut crates: Vec<PathBuf> = read_dir_sorted(&config.crates_dir)?
        .into_iter()
        .filter(|p| p.is_dir())
        .collect();
    crates.sort();
    for krate in &crates {
        let src = krate.join("src");
        if !src.is_dir() {
            continue;
        }
        let crate_name = file_name_of(krate);
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        let has_lib = src.join("lib.rs").is_file();
        for path in &files {
            let text =
                fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
            let analysis = lexer::analyze(&text);
            let ctx = file_ctx(path, &config.crates_dir, &crate_name);
            let is_lib_root = has_lib && ctx.file_name == "lib.rs" && !ctx.is_binary;

            let enabled = |rule: &str| !config.allow.contains(rule);
            if is_lib_root && enabled("forbid-unsafe") {
                rules::forbid_unsafe(&ctx, &analysis, &mut out);
            }
            if enabled("no-panic") {
                rules::no_panic(&ctx, &analysis, &mut out);
            }
            if enabled("no-wall-clock") {
                rules::no_wall_clock(&ctx, &analysis, &mut out);
            }
            if enabled("hot-path-alloc") {
                rules::hot_path_alloc(&ctx, &analysis, &mut out);
            }
            if enabled("hot-path-adjacency") {
                rules::hot_path_adjacency(&ctx, &analysis, &mut out);
            }
            if enabled("engine-lock-unwrap") {
                rules::engine_lock_unwrap(&ctx, &analysis, &mut out);
            }
            if enabled("missing-docs") {
                rules::missing_docs(&ctx, &analysis, &mut out);
            }
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(out)
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let rd = fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    let mut entries = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        entries.push(entry.path());
    }
    entries.sort();
    Ok(entries)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for path in read_dir_sorted(dir)? {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn file_name_of(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default()
}

fn file_ctx(path: &Path, crates_dir: &Path, crate_name: &str) -> FileCtx {
    let rel = path.strip_prefix(crates_dir).unwrap_or(path);
    let rel_path = {
        let mut s = String::from("crates");
        for comp in rel.components() {
            s.push('/');
            s.push_str(&comp.as_os_str().to_string_lossy());
        }
        s
    };
    let file_name = file_name_of(path);
    let is_binary = rel_path.contains("/src/bin/") || file_name == "main.rs";
    FileCtx {
        rel_path,
        crate_name: crate_name.to_string(),
        file_name,
        is_binary,
    }
}

/// Resolves the workspace root: an explicit `--root`, else the nearest
/// ancestor of `cwd` holding a `Cargo.toml` with a `[workspace]` table,
/// else the compile-time location of this crate's workspace.
pub fn resolve_root(explicit: Option<&str>) -> PathBuf {
    if let Some(root) = explicit {
        return PathBuf::from(root);
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir;
                }
            }
        }
        if !dir.pop() {
            break;
        }
    }
    // Fallback: crates/lint/../..
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .components()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostics_render_as_file_line_rule() {
        let d = Diagnostic {
            file: "crates/core/src/solver.rs".into(),
            line: 42,
            rule: "no-panic",
            message: "boom".into(),
        };
        assert_eq!(
            d.to_string(),
            "crates/core/src/solver.rs:42: [no-panic] boom"
        );
    }

    #[test]
    fn resolve_root_finds_this_workspace() {
        let root = resolve_root(None);
        assert!(root.join("Cargo.toml").is_file());
        assert!(root.join("crates/lint").is_dir());
    }
}
