//! Fact extraction: the per-function structural layer under the
//! interprocedural rules.
//!
//! One token walk per file (over the [`crate::lexer`] stream) produces a
//! [`FactDb`]: every function with its span, outgoing calls, lock
//! acquisitions (receiver field matched against declared `Mutex`/
//! `RwLock`/`Condvar` fields), condvar waits, panicking constructs,
//! allocations, wall-clock reads, slow adjacency calls, and blocking
//! I/O (`fs::`/`File::`/fsync) — each site annotated with the set of
//! locks lexically held at that point.
//!
//! The lock-lifetime model is deliberately over-approximate: a guard
//! acquired at brace depth *d* is considered held until the block at
//! depth *d* closes or an explicit `drop(<binding>)` of its `let`
//! binding appears. Temporaries (`m.lock()….len()`) therefore count as
//! held to end of block; that errs toward reporting, never toward
//! silence, and every real acquisition in this workspace is either a
//! named guard or intentionally block-scoped.

use crate::lexer::Tok;
use crate::SourceFile;

/// Lock flavor of a declared field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// `Mutex<T>` — acquired via `lock`/`try_lock`.
    Mutex,
    /// `RwLock<T>` — acquired via `read`/`write`/`try_read`/`try_write`.
    RwLock,
    /// `Condvar` — waited on via `wait`/`wait_timeout`/`wait_while`.
    Condvar,
}

/// A declared lock: a struct field (or rare local) of lock type,
/// identified workspace-wide as `crate::field`.
#[derive(Debug, Clone)]
pub struct LockDecl {
    /// Crate directory name (e.g. `engine`).
    pub crate_name: String,
    /// Field name (e.g. `slots`).
    pub field: String,
    /// Lock flavor.
    pub kind: LockKind,
    /// Workspace-relative file of the declaration.
    pub file: String,
    /// 0-based declaration line.
    pub line: usize,
}

impl LockDecl {
    /// Display identity: `crate::field` (e.g. `engine::slots`).
    pub fn id(&self) -> String {
        format!("{}::{}", self.crate_name, self.field)
    }
}

/// How a call site is written, which governs how it resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallStyle {
    /// `recv.name(…)` — resolves against workspace methods by name.
    Method,
    /// `Qual::name(…)` — resolves via the impl-type index (uppercase
    /// qualifier) or crate-filtered free functions (lowercase).
    Path,
    /// `name(…)` — resolves against free functions, same crate first.
    Bare,
}

/// One outgoing call from a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name as written.
    pub name: String,
    /// Last path segment before `::name` for [`CallStyle::Path`]
    /// (with `Self` already substituted by the enclosing impl type).
    pub qualifier: Option<String>,
    /// For [`CallStyle::Method`] written `self.field.name(…)`: the
    /// field, so resolution can go through the field's declared type
    /// instead of matching every workspace method by name.
    pub recv_field: Option<String>,
    /// Syntactic shape.
    pub style: CallStyle,
    /// 0-based line.
    pub line: usize,
    /// Indices into the owning function's `lock_sites`: locks lexically
    /// held when the call is made.
    pub held: Vec<usize>,
}

/// One lock acquisition inside a function.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Index into [`FactDb::locks`].
    pub lock: usize,
    /// Acquisition method (`lock`, `read`, `write`, …).
    pub method: String,
    /// 0-based line.
    pub line: usize,
    /// Indices into the owning function's `lock_sites` held at this
    /// acquisition (the outer locks of a nesting pair).
    pub held: Vec<usize>,
    /// `lint:allow(lock-order)` on the line, or test code.
    pub exempt: bool,
}

/// One `Condvar` wait.
#[derive(Debug, Clone)]
pub struct WaitSite {
    /// Index into [`FactDb::locks`] (the condvar declaration).
    pub lock: usize,
    /// `wait`, `wait_timeout`, or `wait_while`.
    pub method: String,
    /// 0-based line.
    pub line: usize,
    /// Whether a `loop`/`while`/`for` block encloses the wait inside
    /// the same function (`wait_while` counts as looped by construction).
    pub in_loop: bool,
    /// `lint:allow(condvar-discipline)` on the line, or test code.
    pub exempt: bool,
}

/// A pattern occurrence (panic construct, allocation, clock read,
/// adjacency call, blocking I/O) inside a function.
#[derive(Debug, Clone)]
pub struct PatternSite {
    /// Human-readable pattern (e.g. `` `unwrap` ``, `` `fs::write` ``).
    pub what: String,
    /// 0-based line.
    pub line: usize,
    /// Exempt via the pattern's escape hatch (`PROVABLY:` or
    /// `lint:allow(<rule>)`) or test code.
    pub exempt: bool,
    /// Indices into the owning function's `lock_sites` held at the
    /// site (meaningful for blocking I/O).
    pub held: Vec<usize>,
}

/// Everything the analysis knows about one function.
#[derive(Debug, Clone)]
pub struct FnFact {
    /// Function name as written.
    pub name: String,
    /// Enclosing `impl` type, if any (e.g. `SchemaArtifactCache`).
    pub impl_type: Option<String>,
    /// Whether the first parameter is `self`.
    pub has_self: bool,
    /// `pub` (unrestricted — `pub(crate)` does not count).
    pub is_pub: bool,
    /// Defined inside an `impl Trait for Type` block (trait-impl
    /// methods are reachable through the trait regardless of `pub`).
    pub in_trait_impl: bool,
    /// The implemented trait's last path segment, for trait-impl
    /// methods (so `dyn Trait` receivers resolve through the trait).
    pub trait_name: Option<String>,
    /// Crate directory name.
    pub crate_name: String,
    /// Workspace-relative file.
    pub file: String,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
    /// Defined in a binary target.
    pub is_binary: bool,
    /// Defined in a `#[cfg(test)]` / `#[test]` region.
    pub is_test: bool,
    /// Outgoing calls.
    pub calls: Vec<CallSite>,
    /// Lock acquisitions.
    pub lock_sites: Vec<LockSite>,
    /// Condvar waits.
    pub waits: Vec<WaitSite>,
    /// Panicking constructs (`unwrap`/`expect`/`panic!`/`unreachable!`).
    pub panics: Vec<PatternSite>,
    /// Allocations (`Vec::new`/`Box::new`/`.to_vec()`/`.collect()`).
    pub allocs: Vec<PatternSite>,
    /// Wall-clock reads (`Instant::now`/`SystemTime::now`).
    pub clocks: Vec<PatternSite>,
    /// Slow adjacency calls (`.has_edge()`/`.adjacent_to_set()`).
    pub adjacency: Vec<PatternSite>,
    /// Blocking I/O (`fs::*`, `File::*`, `.sync_all()`, `.sync_data()`).
    pub blocking: Vec<PatternSite>,
}

impl FnFact {
    /// Display name: `Type::name` for methods, bare `name` otherwise.
    pub fn display(&self) -> String {
        match &self.impl_type {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }

    /// Location string `file:line` (1-based line).
    pub fn at(&self) -> String {
        format!("{}:{}", self.file, self.line + 1)
    }
}

/// The workspace fact database: every function and every declared lock.
#[derive(Debug, Default)]
pub struct FactDb {
    /// All functions, in (file, definition) order.
    pub functions: Vec<FnFact>,
    /// All declared locks, deduplicated by (crate, field).
    pub locks: Vec<LockDecl>,
    /// Declared field types per crate: `(crate, field) → Some(Type)`,
    /// or `None` when the same field name is declared with different
    /// types (ambiguous — resolution falls back to name matching).
    pub field_types: std::collections::BTreeMap<(String, String), Option<String>>,
}

/// Acquisition methods that produce a guard on a `Mutex`/`RwLock`.
const LOCK_METHODS: &[&str] = &["lock", "read", "write", "try_lock", "try_read", "try_write"];

/// Keywords never recorded as bare calls.
const KEYWORDS: &[&str] = &[
    "if",
    "else",
    "while",
    "for",
    "loop",
    "match",
    "return",
    "let",
    "fn",
    "in",
    "as",
    "move",
    "ref",
    "mut",
    "pub",
    "use",
    "mod",
    "impl",
    "trait",
    "struct",
    "enum",
    "type",
    "const",
    "static",
    "where",
    "unsafe",
    "async",
    "await",
    "dyn",
    "break",
    "continue",
    "crate",
    "super",
    "self",
    "Self",
    "true",
    "false",
    "drop",
    "assert",
    "debug_assert",
    "assert_eq",
    "assert_ne",
    "debug_assert_eq",
    "debug_assert_ne",
    "matches",
    "write",
    "writeln",
    "format",
    "println",
    "eprintln",
    "vec",
];

/// Extracts the fact database from every loaded source file.
pub fn extract(files: &[SourceFile]) -> FactDb {
    let mut locks = Vec::new();
    for f in files {
        scan_lock_decls(f, &mut locks);
    }
    // Deduplicate by (crate, field): first declaration wins; two structs
    // sharing a field name in one crate fold into one logical lock
    // (over-approximate, deterministic).
    let mut deduped: Vec<LockDecl> = Vec::new();
    for d in locks {
        if !deduped
            .iter()
            .any(|e| e.crate_name == d.crate_name && e.field == d.field)
        {
            deduped.push(d);
        }
    }
    let mut db = FactDb {
        functions: Vec::new(),
        locks: deduped,
        field_types: std::collections::BTreeMap::new(),
    };
    for f in files {
        scan_field_types(f, &mut db.field_types);
    }
    for f in files {
        scan_functions(f, &mut db);
    }
    db
}

/// Finds `field: [path::]Mutex<` / `RwLock<` / `Condvar` declarations.
/// Struct-literal initializers (`field: Mutex::new(`) do not match: the
/// type name there is followed by `::`, not `<` (or, for `Condvar`, by
/// `::` rather than a delimiter). `Arc<`/`Box<` wrappers are unwrapped.
fn scan_lock_decls(sf: &SourceFile, out: &mut Vec<LockDecl>) {
    let toks = &sf.analysis.tokens;
    for i in 0..toks.len() {
        if !is_ident(&toks[i]) || toks.get(i + 1).map(|t| t.text.as_str()) != Some(":") {
            continue;
        }
        if sf.analysis.is_test_line(toks[i].line) {
            continue;
        }
        let mut j = i + 2;
        // Unwrap `Arc<` / `Box<` and skip path prefixes (`sync::Mutex`).
        while let (Some(a), Some(b)) = (toks.get(j), toks.get(j + 1)) {
            let wrapper = (a.text == "Arc" || a.text == "Box") && b.text == "<";
            let path_prefix = is_ident(a) && b.text == "::";
            if !(wrapper || path_prefix) {
                break;
            }
            j += 2;
        }
        let Some(ty) = toks.get(j) else { continue };
        let next = toks.get(j + 1).map(|t| t.text.as_str());
        let kind = match ty.text.as_str() {
            "Mutex" if next == Some("<") => LockKind::Mutex,
            "RwLock" if next == Some("<") => LockKind::RwLock,
            "Condvar" if next != Some("::") => LockKind::Condvar,
            _ => continue,
        };
        out.push(LockDecl {
            crate_name: sf.ctx.crate_name.clone(),
            field: toks[i].text.clone(),
            kind,
            file: sf.ctx.rel_path.clone(),
            line: toks[i].line,
        });
    }
}

/// Records `name: Type` declarations (struct fields, fn params, typed
/// `let`s, statics) as `(crate, name) → Some(Type)` so method calls on
/// those names resolve through the declared type instead of every
/// workspace method by name (the difference between `store.load(…)`
/// hitting `ArtifactStore::load` and `self.hits.load(Ordering)`
/// hitting it too). Only deref wrappers (`Arc`/`Box`/`Rc`) are
/// unwrapped — `Option`/`Cell`/`OnceLock` keep the wrapper as the
/// type, because `.get()`/`.take()` on those belong to the wrapper. A
/// name declared with two different types in one crate collapses to
/// `None` (ambiguous → name-based fallback).
fn scan_field_types(
    sf: &SourceFile,
    out: &mut std::collections::BTreeMap<(String, String), Option<String>>,
) {
    let toks = &sf.analysis.tokens;
    for i in 0..toks.len() {
        if !is_ident(&toks[i]) || toks.get(i + 1).map(|t| t.text.as_str()) != Some(":") {
            continue;
        }
        if sf.analysis.is_test_line(toks[i].line) {
            continue;
        }
        let mut j = i + 2;
        // Skip reference/lifetime/mut/dyn sigils, unwrap deref wrappers,
        // and skip path prefixes (`sync::Mutex`).
        while let Some(a) = toks.get(j) {
            match a.text.as_str() {
                "&" | "mut" | "dyn" => {
                    j += 1;
                    continue;
                }
                "'" => {
                    // `'a` is two tokens; drop both.
                    j += if toks.get(j + 1).is_some_and(is_ident) {
                        2
                    } else {
                        1
                    };
                    continue;
                }
                _ => {}
            }
            let Some(b) = toks.get(j + 1) else { break };
            let deref_wrapper = matches!(a.text.as_str(), "Arc" | "Box" | "Rc");
            let wrapper = deref_wrapper && b.text == "<";
            let path_prefix = is_ident(a) && b.text == "::";
            if !(wrapper || path_prefix) {
                break;
            }
            j += 2;
        }
        let Some(ty) = toks.get(j).filter(|t| is_ident(t)) else {
            continue;
        };
        // Uppercase nominal types only; `Type::…` here is a struct-literal
        // initializer expression, not a declaration.
        if !starts_upper(&ty.text) || toks.get(j + 1).map(|t| t.text.as_str()) == Some("::") {
            continue;
        }
        let key = (sf.ctx.crate_name.clone(), toks[i].text.clone());
        match out.get(&key) {
            None => {
                out.insert(key, Some(ty.text.clone()));
            }
            Some(Some(existing)) if *existing != ty.text => {
                out.insert(key, None);
            }
            _ => {}
        }
    }
}

fn is_ident(t: &Tok) -> bool {
    t.text
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

fn starts_upper(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_uppercase())
}

/// A pending `fn` header awaiting its body `{`.
struct PendingFn {
    name: String,
    line: usize,
    is_pub: bool,
    has_self: bool,
}

/// One open brace block in the walk.
struct Block {
    /// Brace depth of the block interior.
    depth: usize,
    /// `Some(fn index)` if this block is a function body.
    func: Option<usize>,
    /// Whether this block is a `loop`/`while`/`for` body.
    is_loop: bool,
    /// Whether this block is an `impl` body.
    is_impl: bool,
}

/// An acquisition currently considered held.
struct Active {
    /// Owning function (index into `db.functions`).
    func: usize,
    /// Index into that function's `lock_sites`.
    site: usize,
    /// The guard's `let` binding name, if the statement head had one.
    binding: Option<String>,
    /// Brace depth at acquisition: released when this depth closes.
    depth: usize,
}

/// The per-file walker state.
struct Walker<'a> {
    sf: &'a SourceFile,
    depth: usize,
    blocks: Vec<Block>,
    fn_stack: Vec<usize>,
    impl_stack: Vec<(String, Option<String>)>,
    pending_fn: Option<PendingFn>,
    sig_depth: usize,
    pending_loop: bool,
    pending_impl: Option<(String, Option<String>)>,
    active: Vec<Active>,
    stmt_start: usize,
}

/// Walks one file's token stream, appending every function's facts.
fn scan_functions(sf: &SourceFile, db: &mut FactDb) {
    let toks = &sf.analysis.tokens;
    let mut w = Walker {
        sf,
        depth: 0,
        blocks: Vec::new(),
        fn_stack: Vec::new(),
        impl_stack: Vec::new(),
        pending_fn: None,
        sig_depth: 0,
        pending_loop: false,
        pending_impl: None,
        active: Vec::new(),
        stmt_start: 0,
    };
    let mut i = 0usize;
    while i < toks.len() {
        i = w.step(toks, i, db);
    }
}

impl<'a> Walker<'a> {
    /// Processes the token at `i`; returns the next index.
    fn step(&mut self, toks: &[Tok], i: usize, db: &mut FactDb) -> usize {
        let t = &toks[i];
        match t.text.as_str() {
            "fn" => {
                if let Some(name) = toks.get(i + 1).filter(|n| is_ident(n)) {
                    self.pending_fn = Some(PendingFn {
                        name: name.text.clone(),
                        line: t.line,
                        is_pub: self.pub_before(toks, i),
                        has_self: has_self_param(toks, i + 2),
                    });
                    self.sig_depth = 0;
                }
                return i + 1;
            }
            "impl" => {
                self.pending_impl = parse_impl_header(toks, i + 1);
                return i + 1;
            }
            "loop" | "while" | "for" if !self.fn_stack.is_empty() && self.pending_fn.is_none() => {
                self.pending_loop = true;
                return i + 1;
            }
            "(" | "[" if self.pending_fn.is_some() => self.sig_depth += 1,
            ")" | "]" if self.pending_fn.is_some() => {
                self.sig_depth = self.sig_depth.saturating_sub(1)
            }
            ";" => {
                if self.sig_depth == 0 {
                    // Trait method declaration without a body.
                    self.pending_fn = None;
                }
                self.stmt_start = i + 1;
            }
            "{" => {
                self.open_block(db);
                self.stmt_start = i + 1;
                return i + 1;
            }
            "}" => {
                self.close_block();
                self.stmt_start = i + 1;
                return i + 1;
            }
            _ => {}
        }
        if self.fn_stack.is_empty() || !is_ident(t) {
            return i + 1;
        }
        self.record_site(toks, i, db)
    }

    /// Opens a `{`: resolves whichever pending header it belongs to.
    fn open_block(&mut self, db: &mut FactDb) {
        self.depth += 1;
        let mut func = None;
        let mut is_loop = false;
        let mut is_impl = false;
        if let Some(p) = self.pending_fn.take() {
            let (impl_type, trait_name) = match self.impl_stack.last() {
                Some((ty, tn)) => (Some(ty.clone()), tn.clone()),
                None => (None, None),
            };
            db.functions.push(FnFact {
                name: p.name,
                impl_type,
                has_self: p.has_self,
                is_pub: p.is_pub,
                in_trait_impl: trait_name.is_some(),
                trait_name,
                crate_name: self.sf.ctx.crate_name.clone(),
                file: self.sf.ctx.rel_path.clone(),
                line: p.line,
                is_binary: self.sf.ctx.is_binary,
                is_test: self.sf.analysis.is_test_line(p.line),
                calls: Vec::new(),
                lock_sites: Vec::new(),
                waits: Vec::new(),
                panics: Vec::new(),
                allocs: Vec::new(),
                clocks: Vec::new(),
                adjacency: Vec::new(),
                blocking: Vec::new(),
            });
            let idx = db.functions.len() - 1;
            self.fn_stack.push(idx);
            func = Some(idx);
            self.pending_loop = false;
        } else if self.pending_loop {
            self.pending_loop = false;
            is_loop = true;
        } else if let Some(hdr) = self.pending_impl.take() {
            self.impl_stack.push(hdr);
            is_impl = true;
        }
        self.blocks.push(Block {
            depth: self.depth,
            func,
            is_loop,
            is_impl,
        });
    }

    /// Closes a `}`: releases block-scoped guards and pops structure.
    fn close_block(&mut self) {
        let d = self.depth;
        self.active.retain(|a| a.depth < d);
        if self.blocks.last().is_some_and(|b| b.depth == d) {
            if let Some(b) = self.blocks.pop() {
                if b.func.is_some() {
                    self.fn_stack.pop();
                }
                if b.is_impl {
                    self.impl_stack.pop();
                }
            }
        }
        self.depth = d.saturating_sub(1);
    }

    /// Was the `fn` at `i` preceded by an unrestricted `pub`?
    fn pub_before(&self, toks: &[Tok], i: usize) -> bool {
        let mut j = i;
        while j > 0 {
            j -= 1;
            match toks[j].text.as_str() {
                "const" | "async" | "unsafe" | "extern" | "\"" => continue,
                "pub" => return true,
                _ => return false,
            }
        }
        false
    }

    /// Locks currently held by the innermost function, as indices into
    /// its `lock_sites`.
    fn held(&self) -> Vec<usize> {
        let Some(&f) = self.fn_stack.last() else {
            return Vec::new();
        };
        self.active
            .iter()
            .filter(|a| a.func == f)
            .map(|a| a.site)
            .collect()
    }

    /// Is the innermost function's walk currently inside a loop block?
    fn in_loop(&self) -> bool {
        for b in self.blocks.iter().rev() {
            if b.func.is_some() {
                return false;
            }
            if b.is_loop {
                return true;
            }
        }
        false
    }

    /// The `let` binding name at the head of the current statement.
    fn stmt_binding(&self, toks: &[Tok]) -> Option<String> {
        let mut j = self.stmt_start;
        if toks.get(j).map(|t| t.text.as_str()) != Some("let") {
            return None;
        }
        j += 1;
        if toks.get(j).map(|t| t.text.as_str()) == Some("mut") {
            j += 1;
        }
        toks.get(j).filter(|t| is_ident(t)).map(|t| t.text.clone())
    }

    /// Classifies the identifier at `i` as a lock acquisition, wait,
    /// panic/alloc/clock/adjacency/blocking pattern, guard drop, or
    /// call; returns the next index.
    fn record_site(&mut self, toks: &[Tok], i: usize, db: &mut FactDb) -> usize {
        let t = &toks[i];
        let a = &self.sf.analysis;
        let line = t.line;
        let test = a.is_test_line(line);
        let next = toks.get(i + 1).map(|n| n.text.as_str());
        let prev = if i > 0 { toks[i - 1].text.as_str() } else { "" };
        let Some(&cur) = self.fn_stack.last() else {
            return i + 1;
        };
        let held = self.held();

        // Explicit guard release: `drop(binding)`.
        if t.text == "drop" && next == Some("(") {
            if let Some(b) = toks.get(i + 2).filter(|b| is_ident(b)) {
                if toks.get(i + 3).map(|n| n.text.as_str()) == Some(")") {
                    if let Some(pos) = self
                        .active
                        .iter()
                        .rposition(|al| al.func == cur && al.binding.as_deref() == Some(&b.text))
                    {
                        self.active.remove(pos);
                    }
                    return i + 4;
                }
            }
            return i + 1;
        }

        // Method position: `recv.name(`.
        if prev == "." && next == Some("(") {
            let recv = i
                .checked_sub(2)
                .and_then(|r| toks.get(r))
                .filter(|r| is_ident(r));
            let decl = recv.and_then(|r| {
                db.locks
                    .iter()
                    .position(|d| d.crate_name == self.sf.ctx.crate_name && d.field == r.text)
            });
            // Lock acquisition on a declared Mutex/RwLock field.
            if let Some(d) = decl {
                let is_guard_lock = !matches!(db.locks[d].kind, LockKind::Condvar)
                    && LOCK_METHODS.contains(&t.text.as_str());
                if is_guard_lock {
                    let f = &mut db.functions[cur];
                    f.lock_sites.push(LockSite {
                        lock: d,
                        method: t.text.clone(),
                        line,
                        held: held.clone(),
                        exempt: test || a.allowed_at(line, "lock-order"),
                    });
                    let site = f.lock_sites.len() - 1;
                    self.active.push(Active {
                        func: cur,
                        site,
                        binding: self.stmt_binding(toks),
                        depth: self.depth,
                    });
                    return i + 1;
                }
                // Condvar wait discipline.
                if matches!(db.locks[d].kind, LockKind::Condvar)
                    && matches!(t.text.as_str(), "wait" | "wait_timeout" | "wait_while")
                {
                    let in_loop = self.in_loop() || t.text == "wait_while";
                    db.functions[cur].waits.push(WaitSite {
                        lock: d,
                        method: t.text.clone(),
                        line,
                        in_loop,
                        exempt: test || a.allowed_at(line, "condvar-discipline"),
                    });
                    return i + 1;
                }
            }
            // fsync-style blocking methods.
            if matches!(t.text.as_str(), "sync_all" | "sync_data") {
                db.functions[cur].blocking.push(PatternSite {
                    what: format!("`.{}()`", t.text),
                    line,
                    exempt: test || a.allowed_at(line, "blocking-under-lock"),
                    held,
                });
                return i + 1;
            }
        }

        // Panicking constructs.
        let panic_hit = match t.text.as_str() {
            "unwrap" | "expect" => prev == "." && next == Some("("),
            "panic" | "unreachable" => next == Some("!"),
            _ => false,
        };
        if panic_hit && !self.sf.ctx.is_binary {
            db.functions[cur].panics.push(PatternSite {
                what: format!("`{}`", t.text),
                line,
                exempt: test || a.provably_at(line) || a.allowed_at(line, "no-panic"),
                held,
            });
            return i + 1;
        }

        // Allocations.
        let alloc = match t.text.as_str() {
            "Vec" | "Box" => {
                next == Some("::") && toks.get(i + 2).map(|n| n.text.as_str()) == Some("new")
            }
            "to_vec" | "collect" => prev == ".",
            _ => false,
        };
        if alloc {
            let what = match t.text.as_str() {
                "Vec" | "Box" => format!("`{}::new`", t.text),
                other => format!("`{other}`"),
            };
            db.functions[cur].allocs.push(PatternSite {
                what,
                line,
                exempt: test || a.allowed_at(line, "hot-path-alloc"),
                held,
            });
            // Skip `::new` so one call yields one site.
            if t.text == "Vec" || t.text == "Box" {
                return i + 3;
            }
            return i + 1;
        }

        // Wall-clock reads.
        if (t.text == "Instant" || t.text == "SystemTime")
            && next == Some("::")
            && toks.get(i + 2).map(|n| n.text.as_str()) == Some("now")
        {
            db.functions[cur].clocks.push(PatternSite {
                what: format!("`{}::now`", t.text),
                line,
                exempt: test || a.provably_at(line) || a.allowed_at(line, "no-wall-clock"),
                held,
            });
            return i + 3;
        }

        // Slow adjacency entry points.
        if matches!(t.text.as_str(), "has_edge" | "adjacent_to_set")
            && prev == "."
            && next == Some("(")
        {
            db.functions[cur].adjacency.push(PatternSite {
                what: format!("`.{}()`", t.text),
                line,
                exempt: test || a.allowed_at(line, "hot-path-adjacency"),
                held,
            });
            return i + 1;
        }

        // Blocking I/O: `fs::name(` / `File::name(` path calls. These are
        // recorded as blocking facts, never as call edges (resolving
        // `fs::read` by bare name would alias std into the workspace).
        if prev == "::" && next == Some("(") {
            let qual = i.checked_sub(2).and_then(|q| toks.get(q));
            if let Some(q) = qual {
                if q.text == "fs" || q.text == "File" {
                    db.functions[cur].blocking.push(PatternSite {
                        what: format!("`{}::{}`", q.text, t.text),
                        line,
                        exempt: test || a.allowed_at(line, "blocking-under-lock"),
                        held,
                    });
                    return i + 1;
                }
            }
        }

        // Call sites.
        if next == Some("(") && !KEYWORDS.contains(&t.text.as_str()) {
            let (style, qualifier, recv_field) = if prev == "." {
                let recv = i
                    .checked_sub(2)
                    .and_then(|r| toks.get(r))
                    .filter(|r| is_ident(r));
                // Tuple-field receivers (`shard.0.load(…)`) are untyped
                // and overwhelmingly atomics here: no call edge.
                if recv.is_some_and(|r| r.text.starts_with(|c: char| c.is_ascii_digit())) {
                    return i + 1;
                }
                // Capture the receiver for typed resolution when it is a
                // plain declared name (`store.remove(…)`, `INSTALLED.get()`)
                // or a `self.field` access; deeper chains stay untyped.
                let rf = recv.and_then(|r| {
                    let before = i.checked_sub(3).map(|b| toks[b].text.as_str());
                    match before {
                        Some(".") => {
                            let root = i.checked_sub(4).map(|b| toks[b].text.as_str());
                            (root == Some("self")).then(|| r.text.clone())
                        }
                        Some("::") => None,
                        _ => Some(r.text.clone()),
                    }
                });
                (CallStyle::Method, None, rf)
            } else if prev == "::" {
                let qual = i
                    .checked_sub(2)
                    .and_then(|q| toks.get(q))
                    .filter(|q| is_ident(q))
                    .map(|q| q.text.clone());
                let Some(mut qual) = qual else {
                    return i + 1;
                };
                if qual == "Self" {
                    match self.impl_stack.last() {
                        Some((ty, _)) => qual = ty.clone(),
                        None => return i + 1,
                    }
                }
                (CallStyle::Path, Some(qual), None)
            } else {
                // Bare: skip constructors/variants (uppercase) and any
                // identifier that is actually a macro (`name!(…)` never
                // reaches here — `!` intervenes) or a definition head.
                if starts_upper(&t.text) || prev == "fn" {
                    return i + 1;
                }
                (CallStyle::Bare, None, None)
            };
            db.functions[cur].calls.push(CallSite {
                name: t.text.clone(),
                qualifier,
                recv_field,
                style,
                line,
                held,
            });
        }
        i + 1
    }
}

/// Does the parameter list opening at or after `start` begin with a
/// `self` receiver? (`&self`, `&'a self`, `&mut self`, `mut self`,
/// `self`.)
fn has_self_param(toks: &[Tok], start: usize) -> bool {
    // Find the `(` that opens the parameter list (skipping generics).
    let mut j = start;
    let mut angle = 0i32;
    while let Some(t) = toks.get(j) {
        match t.text.as_str() {
            "<" => angle += 1,
            ">" => angle -= 1,
            "(" if angle <= 0 => break,
            "{" | ";" => return false,
            _ => {}
        }
        j += 1;
    }
    // Scan a handful of tokens after `(` for `self` before any `,`.
    for k in 1..=4 {
        match toks.get(j + k).map(|t| t.text.as_str()) {
            Some("self") => return true,
            Some("&") | Some("'") | Some("mut") => continue,
            Some(_) if k == 2 => continue, // lifetime name after `'`
            _ => return false,
        }
    }
    false
}

/// Parses an `impl` header starting after the `impl` token: returns the
/// implemented-on type name and, for `impl Trait for Type`, the trait's
/// last path segment. Generics are skipped; each name is the last
/// identifier at angle-depth 0 (the type after `for`, if present).
fn parse_impl_header(toks: &[Tok], start: usize) -> Option<(String, Option<String>)> {
    let mut angle = 0i32;
    let mut trait_name: Option<String> = None;
    let mut last: Option<String> = None;
    let mut j = start;
    while let Some(t) = toks.get(j) {
        match t.text.as_str() {
            "<" => angle += 1,
            ">" => angle -= 1,
            "{" if angle <= 0 => break,
            ";" => return None,
            "for" if angle == 0 => {
                trait_name = last.take();
            }
            "where" if angle == 0 => break,
            _ if angle == 0 && is_ident(t) && t.text != "dyn" => {
                last = Some(t.text.clone());
            }
            _ => {}
        }
        j += 1;
    }
    last.map(|ty| (ty, trait_name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;
    use crate::FileCtx;

    fn file(src: &str) -> SourceFile {
        SourceFile {
            ctx: FileCtx {
                rel_path: "crates/x/src/lib.rs".into(),
                crate_name: "x".into(),
                file_name: "lib.rs".into(),
                is_binary: false,
                is_lib_root: true,
            },
            analysis: lexer::analyze(src),
        }
    }

    #[test]
    fn lock_decls_match_fields_not_initializers() {
        let src = "struct S { q: Mutex<u32>, r: RwLock<Vec<u8>>, c: Condvar }\n\
                   fn mk() -> S { S { q: Mutex::new(0), r: RwLock::new(Vec::new()), c: Condvar::new() } }\n";
        let db = extract(&[file(src)]);
        let ids: Vec<String> = db.locks.iter().map(|l| l.id()).collect();
        assert_eq!(ids, vec!["x::q", "x::r", "x::c"]);
    }

    #[test]
    fn guard_lifetime_ends_at_block_or_drop() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                   impl S {\n\
                   fn both(&self) {\n\
                       let g = self.a.lock().unwrap_or_else(|e| e.into_inner());\n\
                       self.b.lock().ok();\n\
                       drop(g);\n\
                       helper();\n\
                   }\n\
                   }\n";
        let db = extract(&[file(src)]);
        let Some(f) = db.functions.iter().find(|f| f.name == "both") else {
            panic!("fn both not extracted");
        };
        assert_eq!(f.lock_sites.len(), 2);
        // b acquired while a held.
        assert_eq!(f.lock_sites[1].held, vec![0]);
        // helper() called after drop(g): only b's block-scoped guard
        // remains held.
        let call = f.calls.iter().find(|c| c.name == "helper");
        assert_eq!(call.map(|c| c.held.clone()), Some(vec![1]));
    }

    #[test]
    fn condvar_wait_loop_detection() {
        let src = "struct S { m: Mutex<bool>, cv: Condvar }\n\
                   impl S {\n\
                   fn bad(&self) { let g = self.m.lock().ok(); self.cv.wait(g); }\n\
                   fn good(&self) { let g = self.m.lock().ok(); while true { self.cv.wait(g); } }\n\
                   }\n";
        let db = extract(&[file(src)]);
        let bad = db.functions.iter().find(|f| f.name == "bad");
        let good = db.functions.iter().find(|f| f.name == "good");
        assert_eq!(bad.map(|f| f.waits[0].in_loop), Some(false));
        assert_eq!(good.map(|f| f.waits[0].in_loop), Some(true));
    }

    #[test]
    fn blocking_and_call_facts() {
        let src = "fn save(p: &str) { fs::write(p, b\"x\").ok(); }\n\
                   fn run() { save(\"f\"); obj.flush(); }\n";
        let db = extract(&[file(src)]);
        let save = db.functions.iter().find(|f| f.name == "save");
        assert_eq!(
            save.map(|f| f.blocking[0].what.clone()),
            Some("`fs::write`".to_string())
        );
        // fs::write is a blocking fact, not a call edge (only the
        // trailing `.ok()` registers as a call).
        let save_calls: Vec<String> = save
            .map(|f| f.calls.iter().map(|c| c.name.clone()).collect())
            .unwrap_or_default();
        assert_eq!(save_calls, vec!["ok"]);
        let run = db.functions.iter().find(|f| f.name == "run");
        let names: Vec<String> = run
            .map(|f| f.calls.iter().map(|c| c.name.clone()).collect())
            .unwrap_or_default();
        assert_eq!(names, vec!["save", "flush"]);
    }

    #[test]
    fn impl_headers_resolve_types_and_trait_impls() {
        let src = "impl fmt::Debug for Cache { fn fmt(&self) {} }\n\
                   impl<T> Wrapper<T> { fn get(&self) {} }\n";
        let db = extract(&[file(src)]);
        let fmt = db.functions.iter().find(|f| f.name == "fmt");
        assert_eq!(fmt.map(|f| f.impl_type.clone()), Some(Some("Cache".into())));
        assert_eq!(fmt.map(|f| f.in_trait_impl), Some(true));
        let get = db.functions.iter().find(|f| f.name == "get");
        assert_eq!(
            get.map(|f| f.impl_type.clone()),
            Some(Some("Wrapper".into()))
        );
        assert_eq!(get.map(|f| f.in_trait_impl), Some(false));
    }
}
