//! A minimal, dependency-free Rust lexer for the lint pass.
//!
//! The rules in [`crate::rules`] never need a full parse — they need to
//! know, reliably, that a pattern like `.unwrap()` occurs in *code*
//! rather than inside a string literal or a comment, which function a
//! token belongs to, and whether a region is `#[cfg(test)]`-gated. This
//! module produces exactly that much structure:
//!
//! * a **sanitized** copy of the source in which comment bodies and
//!   string/char-literal contents are blanked out (newlines preserved,
//!   so byte offsets map to the same lines);
//! * a **token stream** over the sanitized text (identifiers, `::`, and
//!   single punctuation characters) with a source line per token;
//! * per-line **directives** harvested from comments — the
//!   `// lint:allow(<rule>)` escape hatch and the `// PROVABLY:`
//!   justification convention — plus doc-comment and attribute-line
//!   markers used by the `missing-docs` rule;
//! * **test-region** marking: every brace block introduced by a
//!   `#[cfg(test)]` or `#[test]` attribute.
//!
//! Raw strings (`r#"…"#`, `br"…"`), nested block comments, and the
//! char-literal/lifetime ambiguity (`'a'` vs `'a`) are handled; macro
//! expansion and conditional compilation are not (the lint reads source,
//! not semantics — that is the point).

/// One token of the sanitized source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// The token text: an identifier/number, the path separator `::`, or
    /// a single punctuation character.
    pub text: String,
    /// 0-based source line the token starts on.
    pub line: usize,
}

/// Per-line facts harvested during lexing.
#[derive(Debug, Clone, Default)]
pub struct LineInfo {
    /// Rules named by `lint:allow(...)` directives in comments on this
    /// line.
    pub allows: Vec<String>,
    /// Whether a `PROVABLY:` justification comment appears on this line.
    pub provably: bool,
    /// Whether a doc comment (`///`, `//!`, `/** */`, `/*! */`) touches
    /// this line.
    pub doc: bool,
    /// Whether the line holds only comment text (no code) — directives on
    /// such lines extend downward to the next code line.
    pub comment_only: bool,
    /// Whether the line is (part of) an outer attribute `#[...]` — the
    /// `missing-docs` rule walks doc comments across attribute lines.
    pub attr: bool,
    /// Whether the line lies inside a `#[cfg(test)]` / `#[test]` block.
    pub test: bool,
}

/// The full lexical analysis of one source file.
#[derive(Debug)]
pub struct Analysis {
    /// Source with comment bodies and literal contents blanked.
    pub sanitized: String,
    /// Token stream over `sanitized`.
    pub tokens: Vec<Tok>,
    /// One entry per source line.
    pub lines: Vec<LineInfo>,
}

impl Analysis {
    /// Whether `rule` is allowed (by a `lint:allow` directive) at `line`:
    /// the directive may sit on the line itself or on the contiguous run
    /// of comment-only lines immediately above it.
    pub fn allowed_at(&self, line: usize, rule: &str) -> bool {
        self.directive_at(line, |info| info.allows.iter().any(|a| a == rule))
    }

    /// Whether a `PROVABLY:` justification covers `line` (same placement
    /// rules as [`Analysis::allowed_at`]).
    pub fn provably_at(&self, line: usize) -> bool {
        self.directive_at(line, |info| info.provably)
    }

    fn directive_at(&self, line: usize, pred: impl Fn(&LineInfo) -> bool) -> bool {
        if line >= self.lines.len() {
            return false;
        }
        if pred(&self.lines[line]) {
            return true;
        }
        // Walk up through the contiguous comment-only block above.
        let mut l = line;
        while l > 0 && self.lines[l - 1].comment_only {
            l -= 1;
            if pred(&self.lines[l]) {
                return true;
            }
        }
        false
    }

    /// Whether `line` is inside test-gated code.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.lines.get(line).is_some_and(|l| l.test)
    }
}

/// Runs the lexer over `src`.
pub fn analyze(src: &str) -> Analysis {
    let chars: Vec<char> = src.chars().collect();
    let line_count = src.split('\n').count();
    let mut lines = vec![LineInfo::default(); line_count.max(1)];
    let mut sanitized = String::with_capacity(src.len());
    let mut line = 0usize;
    let mut i = 0usize;
    let n = chars.len();

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                sanitized.push('\n');
                line += 1;
                i += 1;
            }
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                // Line comment: collect to EOL, blank it, harvest
                // directives.
                let start = i;
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let doc = text.starts_with("///") || text.starts_with("//!");
                harvest(&text, &mut lines[line], doc);
                blank(&mut sanitized, i - start);
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                // Block comment (nesting per Rust), blanked; directives
                // and doc status are applied per line it spans.
                let doc = matches!(chars.get(i + 2), Some('*') | Some('!'))
                    && chars.get(i + 3) != Some(&'/');
                let mut depth = 1usize;
                let mut text = String::new();
                i += 2;
                sanitized.push_str("  ");
                while i < n && depth > 0 {
                    if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        sanitized.push_str("  ");
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        sanitized.push_str("  ");
                        i += 2;
                    } else if chars[i] == '\n' {
                        harvest(&text, &mut lines[line], doc);
                        text.clear();
                        sanitized.push('\n');
                        line += 1;
                        i += 1;
                    } else {
                        text.push(chars[i]);
                        sanitized.push(' ');
                        i += 1;
                    }
                }
                harvest(&text, &mut lines[line], doc);
            }
            '"' => {
                i = lex_string(&chars, i, &mut sanitized, &mut line);
            }
            'r' | 'b' if is_raw_or_byte_literal(&chars, i) => {
                i = lex_raw_or_byte(&chars, i, &mut sanitized, &mut line);
            }
            '\'' => {
                i = lex_quote(&chars, i, &mut sanitized);
            }
            _ => {
                sanitized.push(c);
                i += 1;
            }
        }
    }

    // Comment-only lines: sanitized content is blank but the original
    // line was not.
    for (idx, (sline, oline)) in sanitized.split('\n').zip(src.split('\n')).enumerate() {
        if idx < lines.len() {
            lines[idx].comment_only = sline.trim().is_empty() && !oline.trim().is_empty();
        }
    }

    let tokens = tokenize(&sanitized);
    mark_attr_lines(&tokens, &mut lines);
    mark_test_regions(&tokens, &mut lines);
    Analysis {
        sanitized,
        tokens,
        lines,
    }
}

fn blank(out: &mut String, count: usize) {
    for _ in 0..count {
        out.push(' ');
    }
}

/// Pulls `lint:allow(a, b)` and `PROVABLY:` directives (and the doc flag)
/// out of one comment's text into `info`.
fn harvest(text: &str, info: &mut LineInfo, doc: bool) {
    if doc {
        info.doc = true;
    }
    if text.contains("PROVABLY:") {
        info.provably = true;
    }
    let mut rest = text;
    while let Some(pos) = rest.find("lint:allow(") {
        rest = &rest[pos + "lint:allow(".len()..];
        let Some(end) = rest.find(')') else { break };
        for rule in rest[..end].split(',') {
            let rule = rule.trim();
            if !rule.is_empty() {
                info.allows.push(rule.to_string());
            }
        }
        rest = &rest[end + 1..];
    }
}

/// Is `chars[i]` the start of a raw string (`r"`, `r#"`), byte string
/// (`b"`), raw byte string (`br"`), or byte char (`b'x'`)? Requires a
/// non-identifier character before `i` so identifiers ending in `r`/`b`
/// don't trigger.
fn is_raw_or_byte_literal(chars: &[char], i: usize) -> bool {
    if i > 0 && is_ident_char(chars[i - 1]) {
        return false;
    }
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    if j < chars.len() && chars[j] == 'r' {
        j += 1;
        while j < chars.len() && chars[j] == '#' {
            j += 1;
        }
    }
    if j == i || (j == i + 1 && chars[i] == 'b' && j < chars.len() && chars[j] == '\'') {
        // b'…' byte char.
        return chars[i] == 'b' && chars.get(i + 1) == Some(&'\'');
    }
    chars.get(j) == Some(&'"')
}

fn lex_raw_or_byte(chars: &[char], mut i: usize, out: &mut String, line: &mut usize) -> usize {
    let n = chars.len();
    if chars[i] == 'b' && chars.get(i + 1) == Some(&'\'') {
        out.push_str("b ");
        i += 1;
        return lex_quote(chars, i, out);
    }
    // Prefix: optional b, r, then hashes.
    if chars[i] == 'b' {
        out.push('b');
        i += 1;
    }
    let mut hashes = 0usize;
    if chars.get(i) == Some(&'r') {
        out.push('r');
        i += 1;
        while chars.get(i) == Some(&'#') {
            out.push('#');
            i += 1;
            hashes += 1;
        }
    }
    debug_assert_eq!(chars.get(i), Some(&'"'));
    out.push('"');
    i += 1;
    // Body until `"` followed by `hashes` hashes.
    while i < n {
        if chars[i] == '"' {
            let mut k = 0usize;
            while k < hashes && chars.get(i + 1 + k) == Some(&'#') {
                k += 1;
            }
            if k == hashes {
                out.push('"');
                for _ in 0..hashes {
                    out.push('#');
                }
                return i + 1 + hashes;
            }
        }
        if chars[i] == '\n' {
            out.push('\n');
            *line += 1;
        } else {
            out.push(' ');
        }
        i += 1;
    }
    i
}

fn lex_string(chars: &[char], mut i: usize, out: &mut String, line: &mut usize) -> usize {
    let n = chars.len();
    out.push('"');
    i += 1;
    while i < n {
        match chars[i] {
            '\\' if i + 1 < n => {
                // Preserve newlines in `\`-continuations so line numbers
                // downstream of multi-line strings stay accurate.
                out.push(' ');
                if chars[i + 1] == '\n' {
                    out.push('\n');
                    *line += 1;
                } else {
                    out.push(' ');
                }
                i += 2;
            }
            '"' => {
                out.push('"');
                return i + 1;
            }
            '\n' => {
                out.push('\n');
                *line += 1;
                i += 1;
            }
            _ => {
                out.push(' ');
                i += 1;
            }
        }
    }
    i
}

/// Lexes from a `'`: either a char literal (blanked) or a lifetime
/// (passed through).
fn lex_quote(chars: &[char], i: usize, out: &mut String) -> usize {
    let n = chars.len();
    // Escaped char literal: '\…'
    if chars.get(i + 1) == Some(&'\\') {
        let mut j = i + 2;
        while j < n && chars[j] != '\'' {
            j += 1;
        }
        out.push('\'');
        blank(out, j.saturating_sub(i + 1));
        out.push('\'');
        return (j + 1).min(n);
    }
    // Plain char literal: 'x'
    if chars.get(i + 2) == Some(&'\'') {
        out.push_str("'  ");
        return i + 3;
    }
    // Lifetime: pass the tick through; the identifier follows normally.
    out.push('\'');
    i + 1
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn tokenize(sanitized: &str) -> Vec<Tok> {
    let chars: Vec<char> = sanitized.chars().collect();
    let mut tokens = Vec::new();
    let mut line = 0usize;
    let mut i = 0usize;
    let n = chars.len();
    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if is_ident_char(c) {
            let start = i;
            while i < n && is_ident_char(chars[i]) {
                i += 1;
            }
            tokens.push(Tok {
                text: chars[start..i].iter().collect(),
                line,
            });
        } else if c == ':' && chars.get(i + 1) == Some(&':') {
            tokens.push(Tok {
                text: "::".to_string(),
                line,
            });
            i += 2;
        } else {
            tokens.push(Tok {
                text: c.to_string(),
                line,
            });
            i += 1;
        }
    }
    tokens
}

/// Marks every line spanned by an outer attribute `#[...]`.
fn mark_attr_lines(tokens: &[Tok], lines: &mut [LineInfo]) {
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if tokens[i].text == "#" && tokens[i + 1].text == "[" {
            let mut depth = 0usize;
            let mut j = i + 1;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            for t in &tokens[i..=j.min(tokens.len() - 1)] {
                if let Some(info) = lines.get_mut(t.line) {
                    info.attr = true;
                }
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
}

/// Marks the brace block following each `#[test]` / `#[cfg(...test...)]`
/// attribute as test code. An item with no block before the next `;`
/// (e.g. `#[cfg(test)] mod tests;` or an attributed statement) marks
/// nothing beyond itself.
fn mark_test_regions(tokens: &[Tok], lines: &mut [LineInfo]) {
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if tokens[i].text != "#" || tokens[i + 1].text != "[" {
            i += 1;
            continue;
        }
        // Collect the attribute's tokens.
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut attr: Vec<&str> = Vec::new();
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => attr.push(&tokens[j].text),
            }
            j += 1;
        }
        let is_test_attr = attr.first() == Some(&"test")
            || (attr.first() == Some(&"cfg") && attr.contains(&"test"));
        if !is_test_attr {
            i = j + 1;
            continue;
        }
        // Find the block the attribute applies to: the first `{` before
        // any statement-terminating `;` at attribute depth.
        let mut k = j + 1;
        let mut open = None;
        while k < tokens.len() {
            match tokens[k].text.as_str() {
                "{" => {
                    open = Some(k);
                    break;
                }
                ";" => break,
                _ => {}
            }
            k += 1;
        }
        if let Some(start) = open {
            let mut bdepth = 0usize;
            let mut end = start;
            while end < tokens.len() {
                match tokens[end].text.as_str() {
                    "{" => bdepth += 1,
                    "}" => {
                        bdepth -= 1;
                        if bdepth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                end += 1;
            }
            let first = tokens[i].line;
            let last = tokens[end.min(tokens.len() - 1)].line;
            for info in lines.iter_mut().take(last + 1).skip(first) {
                info.test = true;
            }
            i = end + 1;
        } else {
            i = k + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = r#"let x = "unwrap()"; // .unwrap() here
let y = 1; /* panic!() */ let z = 'a';
"#;
        let a = analyze(src);
        assert!(!a.sanitized.contains("unwrap"));
        assert!(!a.sanitized.contains("panic"));
        assert!(a.sanitized.contains("let x"));
        assert!(a.sanitized.contains("let z"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = "let s = r#\"Instant::now()\"#; let t = br\"x.unwrap()\";\n";
        let a = analyze(src);
        assert!(!a.sanitized.contains("Instant"));
        assert!(!a.sanitized.contains("unwrap"));
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let src = "fn f<'a>(x: &'a str) { let c = '{'; let d = '\\n'; }\n";
        let a = analyze(src);
        assert!(a.sanitized.contains("'a str"));
        assert!(!a.sanitized.contains('{').then(|| ()).is_none());
        // The brace inside the char literal must be blanked: exactly one
        // `{` (the fn body) survives.
        assert_eq!(a.sanitized.matches('{').count(), 1);
    }

    #[test]
    fn string_line_continuations_keep_line_numbers() {
        let src = "let s = \"first \\\n    second\";\nx.unwrap();\n";
        let a = analyze(src);
        let unwrap = a.tokens.iter().find(|t| t.text == "unwrap");
        assert_eq!(unwrap.map(|t| t.line), Some(2));
    }

    #[test]
    fn directives_are_harvested() {
        let src = "// lint:allow(no-panic, hot-path-alloc)\nlet x = 1;\n// PROVABLY: nonempty by the check above\nlet y = 2;\n";
        let a = analyze(src);
        assert!(a.allowed_at(1, "no-panic"));
        assert!(a.allowed_at(1, "hot-path-alloc"));
        assert!(!a.allowed_at(1, "no-wall-clock"));
        assert!(a.provably_at(3));
        assert!(!a.provably_at(1));
    }

    #[test]
    fn test_regions_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn live2() {}\n";
        let a = analyze(src);
        assert!(!a.is_test_line(0));
        assert!(a.is_test_line(2));
        assert!(a.is_test_line(3));
        assert!(a.is_test_line(4));
        assert!(!a.is_test_line(5));
    }

    #[test]
    fn cfg_test_statement_without_block_marks_nothing_below() {
        let src = "fn f() {\n    #[cfg(test)]\n    inject(request);\n    real();\n}\n";
        let a = analyze(src);
        assert!(!a.is_test_line(3));
    }

    #[test]
    fn attributes_and_docs_are_marked() {
        let src = "/// Docs.\n#[derive(Debug)]\npub struct S;\n";
        let a = analyze(src);
        assert!(a.lines[0].doc);
        assert!(a.lines[1].attr);
        assert!(!a.lines[2].attr);
    }
}
