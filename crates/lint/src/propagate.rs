//! Fixed-point propagation over the call graph: the workspace-scoped
//! rules.
//!
//! Four analyses run here, all deterministic (functions are visited in
//! database order, which follows the sorted file walk; adjacency is
//! sorted; lock sets are bitmasks):
//!
//! * **no-panic** — multi-source BFS from the panic roots (public
//!   functions and trait-impl methods in non-test library code); every
//!   non-exempt panicking construct in a reachable function is flagged
//!   at its own line, with the root-to-site call chain in the message.
//! * **hot-path-alloc** — same sweep from the `*_in` hot-path roots
//!   over allocation sites.
//! * **lock-order** — transitive lock sets per function (fixed point),
//!   then an order graph: lock A → lock B when some function acquires
//!   B — directly or through calls — while holding A. Any cycle is a
//!   potential deadlock; the diagnostic carries one witness chain per
//!   edge of the cycle.
//! * **blocking-under-lock** — blocking I/O (`fs::`/`File::`/fsync)
//!   and artifact classification must not be reachable while any lock
//!   is held: direct sites and call sites are both flagged, the latter
//!   with the call path down to the I/O.
//!
//! `condvar-discipline` also lives here (it reads facts only): every
//! `Condvar::wait`/`wait_timeout` must sit inside a predicate loop.

use std::collections::BTreeMap;

use crate::callgraph::{self, CallGraph};
use crate::facts::{FactDb, FnFact};
use crate::{Diagnostic, Workspace};

/// Bitmask over lock indices (the workspace has single digits of locks;
/// 128 is a hard ceiling enforced at extraction scale).
type LockMask = u128;

fn mask_of(lock: usize) -> LockMask {
    if lock < 128 {
        1u128 << lock
    } else {
        0
    }
}

fn loc(f: &FnFact, line: usize) -> String {
    format!("{}:{}", f.file, line + 1)
}

/// Renders a root-to-site chain: `root (file:line) → mid (file:line) →
/// leaf`, where each location is the call site in that function.
fn render_chain(db: &FactDb, chain: &[(usize, Option<usize>)]) -> String {
    let parts: Vec<String> = chain
        .iter()
        .map(|&(f, line)| {
            let ff = &db.functions[f];
            match line {
                Some(l) => format!("{} ({})", ff.display(), loc(ff, l)),
                None => ff.display(),
            }
        })
        .collect();
    parts.join(" → ")
}

/// Shared driver for the two reachability rules.
///
/// A `lint:allow(<rule>)` directive on a call line is a **chain-break**:
/// the call edge is pruned from the sweep, so sites reachable only
/// through that call are not flagged (used for `debug_assert!`-guarded
/// certificate calls, which release builds compile out).
fn flag_reachable(
    ws: &Workspace,
    roots: Vec<usize>,
    rule: &'static str,
    sites: impl Fn(&FnFact) -> Vec<(usize, String)>,
    out: &mut Vec<Diagnostic>,
) {
    let db = &ws.facts;
    let reach = callgraph::reach_from_filtered(&ws.graph, &roots, |fi, e| {
        ws.allowed_at(&db.functions[fi].file, e.line, rule)
    });
    for (fi, f) in db.functions.iter().enumerate() {
        if reach[fi].is_none() {
            continue;
        }
        for (line, base) in sites(f) {
            let chain = callgraph::chain_to(&reach, fi);
            let message = if chain.len() > 1 {
                format!("{base}; call chain: {}", render_chain(db, &chain))
            } else {
                base
            };
            out.push(Diagnostic {
                file: f.file.clone(),
                line: line + 1,
                rule,
                message,
            });
        }
    }
}

/// Transitive `no-panic`: panic sites reachable from public/trait-impl
/// roots.
pub fn no_panic(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let roots: Vec<usize> = ws
        .facts
        .functions
        .iter()
        .enumerate()
        .filter(|(i, f)| ws.graph.included[*i] && (f.is_pub || f.in_trait_impl))
        .map(|(i, _)| i)
        .collect();
    flag_reachable(
        ws,
        roots,
        "no-panic",
        |f| {
            f.panics
                .iter()
                .filter(|s| !s.exempt)
                .map(|s| {
                    (
                        s.line,
                        format!(
                            "{} in non-test library code without a // PROVABLY: justification",
                            s.what
                        ),
                    )
                })
                .collect()
        },
        out,
    );
}

/// Transitive `hot-path-alloc`: allocation sites reachable from `*_in`
/// hot-path roots.
///
/// A `lint:allow(hot-path-alloc)` directive on the `fn` declaration line
/// (or its comment run) opts the function **out of the root set** — for
/// `*_in` functions whose suffix means "reuses a caller's workspace"
/// rather than "allocation-free steady state" (e.g. one-time artifact
/// constructors). Its allocation sites are still flagged when reached
/// from a genuine hot root.
pub fn hot_path_alloc(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let roots: Vec<usize> = ws
        .facts
        .functions
        .iter()
        .enumerate()
        .filter(|(i, f)| {
            ws.graph.included[*i]
                && f.name.ends_with("_in")
                && !ws.allowed_at(&f.file, f.line, "hot-path-alloc")
        })
        .map(|(i, _)| i)
        .collect();
    flag_reachable(
        ws,
        roots,
        "hot-path-alloc",
        |f| {
            f.allocs
                .iter()
                .filter(|s| !s.exempt)
                .map(|s| {
                    (
                        s.line,
                        format!("{} allocates inside a `*_in` zero-alloc hot path", s.what),
                    )
                })
                .collect()
        },
        out,
    );
}

/// `condvar-discipline`: every wait sits inside a predicate loop.
pub fn condvar_discipline(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let db = &ws.facts;
    for (fi, f) in db.functions.iter().enumerate() {
        if !ws.graph.included[fi] {
            continue;
        }
        for w in &f.waits {
            if w.in_loop || w.exempt {
                continue;
            }
            out.push(Diagnostic {
                file: f.file.clone(),
                line: w.line + 1,
                rule: "condvar-discipline",
                message: format!(
                    "`Condvar::{}` on `{}` outside a predicate loop — spurious wakeups \
                     require `while !cond {{ … }}` (or `wait_while`)",
                    w.method,
                    db.locks[w.lock].id()
                ),
            });
        }
    }
}

/// Per-function transitive lock sets: the locks a call into `f` may
/// acquire, computed to a fixed point over the call graph.
fn transitive_locks(db: &FactDb, graph: &CallGraph) -> Vec<LockMask> {
    let n = db.functions.len();
    let mut direct = vec![0 as LockMask; n];
    for (i, f) in db.functions.iter().enumerate() {
        if !graph.included[i] {
            continue;
        }
        for s in &f.lock_sites {
            if !s.exempt {
                direct[i] |= mask_of(s.lock);
            }
        }
    }
    let mut trans = direct.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            let mut m = trans[i];
            for e in &graph.edges[i] {
                m |= trans[e.callee];
            }
            if m != trans[i] {
                trans[i] = m;
                changed = true;
            }
        }
    }
    trans
}

/// One lock-order edge's evidence.
enum Witness {
    /// `func` holds the outer lock (site `outer`) and directly acquires
    /// the inner one (site `inner`).
    Direct {
        func: usize,
        outer: usize,
        inner: usize,
    },
    /// `func` holds the outer lock (site `outer`) and makes a call
    /// (index `call`) that reaches a function acquiring `inner_lock`.
    Trans {
        func: usize,
        outer: usize,
        call: usize,
        target: usize,
        inner_lock: usize,
    },
}

/// Renders one witness chain for the edge `a → b`.
fn render_witness(ws: &Workspace, direct: &[LockMask], w: &Witness) -> String {
    let db = &ws.facts;
    match *w {
        Witness::Direct { func, outer, inner } => {
            let f = &db.functions[func];
            let o = &f.lock_sites[outer];
            let i = &f.lock_sites[inner];
            format!(
                "`{}` acquires `{}` ({}) then `{}` ({})",
                f.display(),
                db.locks[o.lock].id(),
                loc(f, o.line),
                db.locks[i.lock].id(),
                loc(f, i.line)
            )
        }
        Witness::Trans {
            func,
            outer,
            call,
            target,
            inner_lock,
        } => {
            let f = &db.functions[func];
            let o = &f.lock_sites[outer];
            let c = &f.calls[call];
            let mut s = format!(
                "`{}` acquires `{}` ({}) then calls `{}` ({})",
                f.display(),
                db.locks[o.lock].id(),
                loc(f, o.line),
                c.name,
                loc(f, c.line)
            );
            // Forward path from the call target down to a function that
            // directly acquires the inner lock.
            let goal = |x: usize| direct[x] & mask_of(inner_lock) != 0;
            if let Some(path) = callgraph::path_to(&ws.graph, target, goal) {
                for step in &path {
                    let sf = &db.functions[step.func];
                    match step.line_to_next {
                        Some(l) => {
                            s.push_str(&format!(" → `{}` ({})", sf.display(), loc(sf, l)));
                        }
                        None => {
                            let site = sf
                                .lock_sites
                                .iter()
                                .find(|ls| !ls.exempt && ls.lock == inner_lock);
                            match site {
                                Some(site) => s.push_str(&format!(
                                    " → `{}` acquires `{}` ({})",
                                    sf.display(),
                                    db.locks[inner_lock].id(),
                                    loc(sf, site.line)
                                )),
                                None => s.push_str(&format!(" → `{}`", sf.display())),
                            }
                        }
                    }
                }
            }
            s
        }
    }
}

/// Anchor location (file, 1-based line) for a witness: the outer
/// acquisition.
fn witness_anchor(db: &FactDb, w: &Witness) -> (String, usize) {
    let (func, outer) = match *w {
        Witness::Direct { func, outer, .. } | Witness::Trans { func, outer, .. } => (func, outer),
    };
    let f = &db.functions[func];
    (f.file.clone(), f.lock_sites[outer].line + 1)
}

/// `lock-order`: builds the acquisition-order graph and reports every
/// cycle (strongly connected component of ≥ 2 locks) as a potential
/// deadlock, with one witness chain per edge of the cycle.
pub fn lock_order(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let db = &ws.facts;
    let graph = &ws.graph;
    let nlocks = db.locks.len();
    if nlocks == 0 {
        return;
    }
    let trans = transitive_locks(db, graph);
    let mut direct = vec![0 as LockMask; db.functions.len()];
    for (i, f) in db.functions.iter().enumerate() {
        if graph.included[i] {
            for s in &f.lock_sites {
                if !s.exempt {
                    direct[i] |= mask_of(s.lock);
                }
            }
        }
    }

    // Edge map: (outer, inner) → first witness found, in deterministic
    // function order.
    let mut edges: BTreeMap<(usize, usize), Witness> = BTreeMap::new();
    for (fi, f) in db.functions.iter().enumerate() {
        if !graph.included[fi] {
            continue;
        }
        for (si, s) in f.lock_sites.iter().enumerate() {
            if s.exempt {
                continue;
            }
            for &h in &s.held {
                let o = &f.lock_sites[h];
                if o.exempt || o.lock == s.lock {
                    continue;
                }
                edges.entry((o.lock, s.lock)).or_insert(Witness::Direct {
                    func: fi,
                    outer: h,
                    inner: si,
                });
            }
        }
        for (ci, c) in f.calls.iter().enumerate() {
            if c.held.is_empty() {
                continue;
            }
            let targets = graph.call_targets[fi].get(ci).cloned().unwrap_or_default();
            for &t in &targets {
                let m = trans[t];
                for inner in 0..nlocks {
                    if m & mask_of(inner) == 0 {
                        continue;
                    }
                    for &h in &c.held {
                        let o = &f.lock_sites[h];
                        if o.exempt || o.lock == inner {
                            continue;
                        }
                        edges.entry((o.lock, inner)).or_insert(Witness::Trans {
                            func: fi,
                            outer: h,
                            call: ci,
                            target: t,
                            inner_lock: inner,
                        });
                    }
                }
            }
        }
    }

    // Lock-level reachability closure for SCC grouping (lock counts are
    // single digits; O(n³) is irrelevant).
    let mut reach = vec![0 as LockMask; nlocks];
    for &(a, b) in edges.keys() {
        reach[a] |= mask_of(b);
    }
    let mut changed = true;
    while changed {
        changed = false;
        for a in 0..nlocks {
            let mut m = reach[a];
            for b in 0..nlocks {
                if reach[a] & mask_of(b) != 0 {
                    m |= reach[b];
                }
            }
            if m != reach[a] {
                reach[a] = m;
                changed = true;
            }
        }
    }

    // SCCs: a ~ b when each reaches the other. Report each component
    // once, keyed by its smallest lock.
    let mut reported = vec![false; nlocks];
    for a in 0..nlocks {
        if reported[a] || reach[a] & mask_of(a) == 0 {
            continue;
        }
        let scc: Vec<usize> = (0..nlocks)
            .filter(|&b| reach[a] & mask_of(b) != 0 && reach[b] & mask_of(a) != 0)
            .collect();
        for &b in &scc {
            reported[b] = true;
        }
        // Shortest deterministic cycle through the smallest lock: BFS
        // within the SCC from `a`, closed by the best predecessor edge
        // back to `a`.
        let mut dist: BTreeMap<usize, (usize, Vec<usize>)> = BTreeMap::new();
        dist.insert(a, (0, vec![a]));
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(a);
        while let Some(u) = queue.pop_front() {
            let (du, pu) = match dist.get(&u) {
                Some(v) => v.clone(),
                None => continue,
            };
            for &v in &scc {
                if v != a && edges.contains_key(&(u, v)) && !dist.contains_key(&v) {
                    let mut p = pu.clone();
                    p.push(v);
                    dist.insert(v, (du + 1, p));
                    queue.push_back(v);
                }
            }
        }
        let back = scc
            .iter()
            .filter(|&&u| edges.contains_key(&(u, a)) && dist.contains_key(&u))
            .min_by_key(|&&u| (dist.get(&u).map(|d| d.0).unwrap_or(usize::MAX), u));
        let Some(&back) = back else { continue };
        let mut cycle = dist.get(&back).map(|d| d.1.clone()).unwrap_or_default();
        cycle.push(a);

        let names: Vec<String> = cycle
            .iter()
            .map(|&l| format!("`{}`", db.locks[l].id()))
            .collect();
        let mut msg = format!(
            "lock-order cycle (potential deadlock): {}",
            names.join(" → ")
        );
        let mut anchor: Option<(String, usize)> = None;
        for pair in cycle.windows(2) {
            let Some(w) = edges.get(&(pair[0], pair[1])) else {
                continue;
            };
            if anchor.is_none() {
                anchor = Some(witness_anchor(db, w));
            }
            msg.push_str(&format!(
                "; witness `{}` → `{}`: {}",
                db.locks[pair[0]].id(),
                db.locks[pair[1]].id(),
                render_witness(ws, &direct, w)
            ));
        }
        let (file, line) =
            anchor.unwrap_or_else(|| (db.locks[a].file.clone(), db.locks[a].line + 1));
        out.push(Diagnostic {
            file,
            line,
            rule: "lock-order",
            message: msg,
        });
    }
}

/// Is `f` an artifact-classification entry point? (The exact shape of
/// the PR 7 race: classification work performed under a cache lock.)
fn is_classification(f: &FnFact) -> bool {
    f.name == "classify_bipartite"
        || (f.name == "build" && f.impl_type.as_deref() == Some("SchemaArtifacts"))
}

/// `blocking-under-lock`: no disk I/O and no artifact classification —
/// direct or reachable through calls — while any lock is held.
pub fn blocking_under_lock(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let db = &ws.facts;
    let graph = &ws.graph;
    let n = db.functions.len();

    // Which functions transitively reach a blocking site or a
    // classification entry point.
    let mut reaches = vec![false; n];
    for (i, f) in db.functions.iter().enumerate() {
        if graph.included[i] && (!f.blocking.is_empty() || is_classification(f)) {
            reaches[i] = true;
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            if reaches[i] {
                continue;
            }
            if graph.edges[i].iter().any(|e| reaches[e.callee]) {
                reaches[i] = true;
                changed = true;
            }
        }
    }
    let is_seed =
        |x: usize| !db.functions[x].blocking.is_empty() || is_classification(&db.functions[x]);

    for (fi, f) in db.functions.iter().enumerate() {
        if !graph.included[fi] {
            continue;
        }
        // Direct: a blocking site with a lock held.
        for s in &f.blocking {
            if s.exempt || s.held.is_empty() {
                continue;
            }
            let o = &f.lock_sites[s.held[0]];
            out.push(Diagnostic {
                file: f.file.clone(),
                line: s.line + 1,
                rule: "blocking-under-lock",
                message: format!(
                    "{} while `{}` is held (acquired at {}) — no disk I/O under a lock",
                    s.what,
                    db.locks[o.lock].id(),
                    loc(f, o.line)
                ),
            });
        }
        // Transitive: a call made under a lock into blocking territory.
        for (ci, c) in f.calls.iter().enumerate() {
            if c.held.is_empty() {
                continue;
            }
            if ws.allowed_at(&f.file, c.line, "blocking-under-lock") {
                continue;
            }
            let targets = graph.call_targets[fi].get(ci).cloned().unwrap_or_default();
            let Some(&t) = targets.iter().find(|&&t| reaches[t]) else {
                continue;
            };
            let o = &f.lock_sites[c.held[0]];
            let mut msg = format!(
                "call to `{}` ({}) while `{}` is held (acquired at {}) reaches blocking work",
                db.functions[t].display(),
                loc(f, c.line),
                db.locks[o.lock].id(),
                loc(f, o.line)
            );
            if let Some(path) = callgraph::path_to(graph, t, is_seed) {
                let mut parts: Vec<String> = Vec::new();
                for step in &path {
                    let sf = &db.functions[step.func];
                    match step.line_to_next {
                        Some(l) => parts.push(format!("`{}` ({})", sf.display(), loc(sf, l))),
                        None => {
                            let leaf = match sf.blocking.first() {
                                Some(b) => {
                                    format!("`{}` — {} ({})", sf.display(), b.what, loc(sf, b.line))
                                }
                                None => format!("`{}` — artifact classification", sf.display()),
                            };
                            parts.push(leaf);
                        }
                    }
                }
                msg.push_str(&format!(": {}", parts.join(" → ")));
            }
            out.push(Diagnostic {
                file: f.file.clone(),
                line: c.line + 1,
                rule: "blocking-under-lock",
                message: msg,
            });
        }
    }
}
