//! Workspace call-graph resolution over the [`crate::facts`] layer.
//!
//! Resolution is name-based (the lint never typechecks), so the policy
//! is engineered for *silence on std and noise control* rather than
//! completeness:
//!
//! * `Qual::name(…)` with an **uppercase** qualifier resolves only
//!   through the (impl type, method) index — `Vec::with_capacity`,
//!   `Arc::new`, enum constructors and every other std path fall out
//!   naturally because no workspace impl carries those type names;
//! * `qual::name(…)` with a **lowercase** qualifier maps the qualifier
//!   to a crate when it looks like one (`mcc_obs` → `obs`, `crate`/
//!   `self` → the caller's crate) and otherwise treats it as a module
//!   path, resolving against free functions (same crate preferred);
//! * `self.field.name(…)` with a field whose declared type is known
//!   resolves through the (impl type, method) index exclusively —
//!   possibly to nothing (atomics, std containers);
//! * any other `recv.name(…)` resolves against every workspace method
//!   of that name (receivers are untyped — over-approximate by design);
//! * `name(…)` resolves against free functions, same crate preferred.
//!
//! Functions in `#[cfg(test)]` regions and binary targets are excluded
//! from the graph entirely: they are neither roots, nor targets, nor
//! carriers of transitive facts.

use std::collections::{BTreeMap, BTreeSet};

use crate::facts::{CallSite, CallStyle, FactDb};

/// Workspace dependency closure: crate directory → every crate
/// directory it (transitively) depends on.
pub type CrateDeps = BTreeMap<String, BTreeSet<String>>;

/// One resolved edge: `caller` (implicit) calls [`Edge::callee`] at
/// [`Edge::line`] (0-based, in the caller's file).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Callee index into [`FactDb::functions`].
    pub callee: usize,
    /// Earliest call line in the caller.
    pub line: usize,
}

/// The resolved workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Per-function adjacency, sorted by callee index, one edge per
    /// callee (earliest call line wins).
    pub edges: Vec<Vec<Edge>>,
    /// Per-function, per-call-site resolved targets (aligned with
    /// `FactDb::functions[f].calls`), each sorted and deduplicated.
    pub call_targets: Vec<Vec<Vec<usize>>>,
    /// Whether each function participates in the graph (not test, not
    /// binary).
    pub included: Vec<bool>,
}

/// Name indexes over the fact database.
struct Indexes {
    free_by_name: BTreeMap<String, Vec<usize>>,
    methods_by_name: BTreeMap<String, Vec<usize>>,
    by_impl: BTreeMap<(String, String), Vec<usize>>,
}

/// Maps a lowercase path qualifier to a crate directory name, if it
/// names one (`mcc` is the `core` crate; `mcc_graph` is `graph`).
fn qualifier_crate<'q>(qual: &'q str, caller_crate: &'q str) -> Option<&'q str> {
    match qual {
        "crate" | "self" | "super" => Some(caller_crate),
        "mcc" => Some("core"),
        _ => qual.strip_prefix("mcc_"),
    }
}

/// Builds the resolved call graph. `deps` narrows name-based (untyped)
/// resolution to crates the caller can actually see: a crate with a
/// manifest entry only resolves against itself and its transitive
/// dependencies (a crate with no entry is left unfiltered, which keeps
/// manifest-less fixture trees working).
pub fn build(db: &FactDb, deps: &CrateDeps) -> CallGraph {
    let n = db.functions.len();
    let mut included = vec![false; n];
    for (i, f) in db.functions.iter().enumerate() {
        included[i] = !f.is_test && !f.is_binary;
    }
    let mut idx = Indexes {
        free_by_name: BTreeMap::new(),
        methods_by_name: BTreeMap::new(),
        by_impl: BTreeMap::new(),
    };
    for (i, f) in db.functions.iter().enumerate() {
        if !included[i] {
            continue;
        }
        if f.has_self {
            idx.methods_by_name
                .entry(f.name.clone())
                .or_default()
                .push(i);
        } else {
            idx.free_by_name.entry(f.name.clone()).or_default().push(i);
        }
        if let Some(ty) = &f.impl_type {
            idx.by_impl
                .entry((ty.clone(), f.name.clone()))
                .or_default()
                .push(i);
        }
        // Trait-impl methods are also reachable through the trait name
        // (`dyn Trait` receivers, `Trait::method(x)` calls).
        if let Some(tr) = &f.trait_name {
            idx.by_impl
                .entry((tr.clone(), f.name.clone()))
                .or_default()
                .push(i);
        }
    }

    let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); n];
    let mut call_targets: Vec<Vec<Vec<usize>>> = vec![Vec::new(); n];
    for (i, f) in db.functions.iter().enumerate() {
        if !included[i] {
            continue;
        }
        let mut per_call = Vec::with_capacity(f.calls.len());
        for call in &f.calls {
            let mut targets = resolve(db, &idx, deps, &f.crate_name, call);
            targets.sort_unstable();
            targets.dedup();
            // Self-recursion adds nothing to any propagation.
            targets.retain(|&t| t != i);
            for &t in &targets {
                edges[i].push(Edge {
                    callee: t,
                    line: call.line,
                });
            }
            per_call.push(targets);
        }
        edges[i].sort_by_key(|e| (e.callee, e.line));
        edges[i].dedup_by_key(|e| e.callee);
        call_targets[i] = per_call;
    }
    CallGraph {
        edges,
        call_targets,
        included,
    }
}

/// Whether `caller_crate` can see items of `f`'s crate (same crate, a
/// transitive dependency, or the caller has no manifest entry).
fn sees(db: &FactDb, deps: &CrateDeps, caller_crate: &str, f: usize) -> bool {
    let fc = &db.functions[f].crate_name;
    fc == caller_crate
        || match deps.get(caller_crate) {
            Some(d) => d.contains(fc),
            None => true,
        }
}

/// Resolves one call site to candidate workspace functions.
fn resolve(
    db: &FactDb,
    idx: &Indexes,
    deps: &CrateDeps,
    caller_crate: &str,
    call: &CallSite,
) -> Vec<usize> {
    let none: Vec<usize> = Vec::new();
    match call.style {
        CallStyle::Method => {
            // A receiver with an unambiguously declared type resolves
            // through the impl index exclusively — resolving to nothing
            // when the type has no workspace impl (atomics, `Cell`s, std
            // containers). This is what keeps `self.hits.load(Ordering)`
            // from aliasing into `ArtifactStore::load`.
            if let Some(field) = &call.recv_field {
                let key = (caller_crate.to_string(), field.clone());
                if let Some(Some(ty)) = db.field_types.get(&key) {
                    return idx
                        .by_impl
                        .get(&(ty.clone(), call.name.clone()))
                        .cloned()
                        .unwrap_or(none);
                }
            }
            let candidates = idx.methods_by_name.get(&call.name).cloned().unwrap_or(none);
            candidates
                .into_iter()
                .filter(|&f| sees(db, deps, caller_crate, f))
                .collect()
        }
        CallStyle::Path => {
            let Some(qual) = call.qualifier.as_deref() else {
                return none;
            };
            if qual.chars().next().is_some_and(|c| c.is_uppercase()) {
                // Impl index only — no fallback, by policy.
                return idx
                    .by_impl
                    .get(&(qual.to_string(), call.name.clone()))
                    .cloned()
                    .unwrap_or(none);
            }
            let candidates = idx.free_by_name.get(&call.name).cloned().unwrap_or(none);
            if let Some(krate) = qualifier_crate(qual, caller_crate) {
                return candidates
                    .into_iter()
                    .filter(|&f| db.functions[f].crate_name == krate)
                    .collect();
            }
            // Module-style qualifier (`io::`, `cache::`): free functions,
            // same crate preferred.
            let candidates = candidates
                .into_iter()
                .filter(|&f| sees(db, deps, caller_crate, f))
                .collect();
            prefer_crate(db, candidates, caller_crate)
        }
        CallStyle::Bare => {
            let candidates: Vec<usize> = idx
                .free_by_name
                .get(&call.name)
                .cloned()
                .unwrap_or(none)
                .into_iter()
                .filter(|&f| sees(db, deps, caller_crate, f))
                .collect();
            prefer_crate(db, candidates, caller_crate)
        }
    }
}

/// Narrows `candidates` to the caller's crate when that subset is
/// non-empty (unqualified and module-qualified calls are almost always
/// intra-crate); falls back to the full set otherwise.
fn prefer_crate(db: &FactDb, candidates: Vec<usize>, caller_crate: &str) -> Vec<usize> {
    let same: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&f| db.functions[f].crate_name == caller_crate)
        .collect();
    if same.is_empty() {
        candidates
    } else {
        same
    }
}

/// How a function was first reached in a breadth-first sweep.
#[derive(Debug, Clone, Copy)]
pub struct ReachInfo {
    /// `Some((parent fn, call line in parent))`, or `None` for roots.
    pub from: Option<(usize, usize)>,
}

/// Multi-source BFS from `roots` (already sorted for determinism);
/// returns per-function reach info (`None` = unreachable). Adjacency is
/// sorted, so first-visit parents — and therefore every printed call
/// chain — are deterministic.
pub fn reach_from(graph: &CallGraph, roots: &[usize]) -> Vec<Option<ReachInfo>> {
    reach_from_filtered(graph, roots, |_, _| false)
}

/// [`reach_from`] with edge pruning: `skip(caller, edge)` returning
/// `true` removes that call edge from the sweep. The reachability rules
/// use this to honor **chain-break** `lint:allow` directives placed on a
/// call line — "everything reached only through this call is fine"
/// (e.g. a `debug_assert!`-guarded certificate compiled out of release
/// builds). Sites reachable through an unpruned path are still flagged.
pub fn reach_from_filtered(
    graph: &CallGraph,
    roots: &[usize],
    mut skip: impl FnMut(usize, &Edge) -> bool,
) -> Vec<Option<ReachInfo>> {
    let mut reach: Vec<Option<ReachInfo>> = vec![None; graph.edges.len()];
    let mut queue = std::collections::VecDeque::new();
    for &r in roots {
        if reach[r].is_none() {
            reach[r] = Some(ReachInfo { from: None });
            queue.push_back(r);
        }
    }
    while let Some(f) = queue.pop_front() {
        for e in &graph.edges[f] {
            if reach[e.callee].is_none() && !skip(f, e) {
                reach[e.callee] = Some(ReachInfo {
                    from: Some((f, e.line)),
                });
                queue.push_back(e.callee);
            }
        }
    }
    reach
}

/// Reconstructs the root-to-`f` chain from [`reach_from`] output: a list
/// of `(function, line of its call to the next chain entry)`; the final
/// entry has no call line.
pub fn chain_to(reach: &[Option<ReachInfo>], f: usize) -> Vec<(usize, Option<usize>)> {
    let mut rev: Vec<(usize, Option<usize>)> = Vec::new();
    let mut cur = f;
    let mut next_line: Option<usize> = None;
    loop {
        rev.push((cur, next_line));
        match reach.get(cur).and_then(|r| *r) {
            Some(ReachInfo {
                from: Some((p, line)),
            }) => {
                next_line = Some(line);
                cur = p;
            }
            _ => break,
        }
    }
    rev.reverse();
    rev
}

/// One step of a forward witness path: the function visited and the
/// line of its call to the next step (`None` on the last step).
#[derive(Debug, Clone, Copy)]
pub struct Step {
    /// Function index.
    pub func: usize,
    /// Call line to the next step, in this function's file.
    pub line_to_next: Option<usize>,
}

/// Shortest deterministic path from `start` to any function satisfying
/// `goal`, over graph edges. Returns `None` if unreachable.
pub fn path_to(graph: &CallGraph, start: usize, goal: impl Fn(usize) -> bool) -> Option<Vec<Step>> {
    let mut from: Vec<Option<(usize, usize)>> = vec![None; graph.edges.len()];
    let mut seen = vec![false; graph.edges.len()];
    let mut queue = std::collections::VecDeque::new();
    seen[start] = true;
    queue.push_back(start);
    let mut found = if goal(start) { Some(start) } else { None };
    while found.is_none() {
        let Some(f) = queue.pop_front() else { break };
        for e in &graph.edges[f] {
            if !seen[e.callee] {
                seen[e.callee] = true;
                from[e.callee] = Some((f, e.line));
                if goal(e.callee) {
                    found = Some(e.callee);
                    break;
                }
                queue.push_back(e.callee);
            }
        }
    }
    let end = found?;
    let mut rev: Vec<Step> = Vec::new();
    let mut cur = end;
    let mut line: Option<usize> = None;
    loop {
        rev.push(Step {
            func: cur,
            line_to_next: line,
        });
        match from[cur] {
            Some((p, l)) => {
                line = Some(l);
                cur = p;
            }
            None => break,
        }
    }
    rev.reverse();
    Some(rev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts;
    use crate::lexer;
    use crate::{FileCtx, SourceFile};

    fn file(krate: &str, src: &str) -> SourceFile {
        SourceFile {
            ctx: FileCtx {
                rel_path: format!("crates/{krate}/src/lib.rs"),
                crate_name: krate.into(),
                file_name: "lib.rs".into(),
                is_binary: false,
                is_lib_root: true,
            },
            analysis: lexer::analyze(src),
        }
    }

    #[test]
    fn uppercase_qualifiers_resolve_via_impl_index_only() {
        let src = "struct W;\n\
                   impl W { fn new() -> W { W } }\n\
                   fn mk() { let w = W::new(); let v = Vec::new(); other(); }\n\
                   fn other() {}\n";
        let db = facts::extract(&[file("x", src)]);
        let g = build(&db, &CrateDeps::new());
        let mk = db.functions.iter().position(|f| f.name == "mk");
        let w_new = db.functions.iter().position(|f| f.name == "new");
        let other = db.functions.iter().position(|f| f.name == "other");
        let callees: Vec<usize> = mk
            .map(|m| g.edges[m].iter().map(|e| e.callee).collect())
            .unwrap_or_default();
        // W::new resolves (workspace impl); Vec::new is an alloc fact,
        // not an edge; other() resolves bare.
        assert_eq!(
            callees,
            vec![w_new, other].into_iter().flatten().collect::<Vec<_>>()
        );
    }

    #[test]
    fn bare_calls_prefer_the_caller_crate() {
        let a = file("a", "fn go() { shared(); }\nfn shared() {}\n");
        let b = file("b", "fn shared() {}\n");
        let db = facts::extract(&[a, b]);
        let g = build(&db, &CrateDeps::new());
        let go = db.functions.iter().position(|f| f.name == "go");
        let shared_a = db
            .functions
            .iter()
            .position(|f| f.name == "shared" && f.crate_name == "a");
        let callees: Vec<usize> = go
            .map(|m| g.edges[m].iter().map(|e| e.callee).collect())
            .unwrap_or_default();
        assert_eq!(callees, shared_a.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn test_functions_are_outside_the_graph() {
        let src = "fn live() { helper(); }\nfn helper() {}\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { helper(); }\n}\n";
        let db = facts::extract(&[file("x", src)]);
        let g = build(&db, &CrateDeps::new());
        let t = db.functions.iter().position(|f| f.name == "t");
        assert_eq!(t.map(|i| g.included[i]), Some(false));
        assert_eq!(t.map(|i| g.edges[i].len()), Some(0));
    }

    #[test]
    fn chains_reconstruct_with_call_lines() {
        let src = "pub fn root() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\n";
        let db = facts::extract(&[file("x", src)]);
        let g = build(&db, &CrateDeps::new());
        let root = db.functions.iter().position(|f| f.name == "root");
        let leaf = db.functions.iter().position(|f| f.name == "leaf");
        let (Some(root), Some(leaf)) = (root, leaf) else {
            panic!("fns not extracted");
        };
        let reach = reach_from(&g, &[root]);
        let chain = chain_to(&reach, leaf);
        let names: Vec<&str> = chain
            .iter()
            .map(|(f, _)| db.functions[*f].name.as_str())
            .collect();
        assert_eq!(names, vec!["root", "mid", "leaf"]);
        assert_eq!(chain[0].1, Some(0));
        assert_eq!(chain[1].1, Some(1));
        assert_eq!(chain[2].1, None);
    }
}
