//! Machine-readable reporting: byte-deterministic JSON and SARIF 2.1.0
//! writers, and the checked-in baseline format.
//!
//! Determinism is load-bearing: CI archives the SARIF artifact and the
//! golden tests pin both formats byte-for-byte, so the writers are
//! hand-rolled (no dependency, no map-iteration-order hazards — the
//! diagnostic list arrives already sorted by (file, line, rule)).
//!
//! The baseline file lets a new rule adopt incrementally: one line per
//! accepted diagnostic, `file:line: [rule]` (messages are excluded so
//! wording changes don't churn the baseline), `#` comments ignored.

use std::collections::BTreeSet;

use crate::rules::RULES;
use crate::Diagnostic;

/// Escapes a string for a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders diagnostics as the tool's native JSON report.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"tool\": \"mcc-lint\",\n  \"version\": 1,\n  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            esc(&d.file),
            d.line,
            esc(d.rule),
            esc(&d.message)
        ));
    }
    if diags.is_empty() {
        out.push_str("],\n");
    } else {
        out.push_str("\n  ],\n");
    }
    out.push_str(&format!("  \"count\": {}\n}}\n", diags.len()));
    out
}

/// Renders diagnostics as a SARIF 2.1.0 log (the format CI archives and
/// code-review UIs ingest).
pub fn to_sarif(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"mcc-lint\",\n");
    out.push_str("          \"rules\": [");
    for (i, r) in RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
            esc(r.name),
            esc(r.desc)
        ));
    }
    out.push_str("\n          ]\n        }\n      },\n");
    out.push_str("      \"results\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let rule_index = RULES
            .iter()
            .position(|r| r.name == d.rule)
            .unwrap_or_default();
        out.push_str(&format!(
            "\n        {{\"ruleId\": \"{}\", \"ruleIndex\": {}, \"level\": \"error\", \
             \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": \
             {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}]}}",
            esc(d.rule),
            rule_index,
            esc(&d.message),
            esc(&d.file),
            d.line
        ));
    }
    if diags.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str("\n      ]\n");
    }
    out.push_str("    }\n  ]\n}\n");
    out
}

/// One baseline entry: an accepted diagnostic location.
pub type BaselineEntry = (String, usize, String);

/// Parses a baseline file body into its entry set. Lines are
/// `file:line: [rule]`; blank lines and `#` comments are skipped;
/// malformed lines are reported as errors (a silently dropped entry
/// would un-suppress a finding).
pub fn parse_baseline(text: &str) -> Result<BTreeSet<BaselineEntry>, String> {
    let mut set = BTreeSet::new();
    for (n, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parsed = (|| {
            let open = line.find('[')?;
            let close = line.rfind(']')?;
            let rule = line.get(open + 1..close)?.to_string();
            let head = line.get(..open)?.trim().trim_end_matches(':').trim();
            let colon = head.rfind(':')?;
            let file = head.get(..colon)?.to_string();
            let lineno: usize = head.get(colon + 1..)?.parse().ok()?;
            Some((file, lineno, rule))
        })();
        match parsed {
            Some(entry) => {
                set.insert(entry);
            }
            None => return Err(format!("baseline line {}: malformed entry `{raw}`", n + 1)),
        }
    }
    Ok(set)
}

/// Renders diagnostics in baseline format (for `--write-baseline`).
pub fn render_baseline(diags: &[Diagnostic]) -> String {
    let mut out = String::from(
        "# mcc-lint baseline: accepted diagnostics, one `file:line: [rule]` per line.\n\
         # Regenerate with `cargo run -p mcc-lint -- --write-baseline lint-baseline.txt`.\n\
         # The goal state is an empty list: fix or justify, don't accumulate.\n",
    );
    for d in diags {
        out.push_str(&format!("{}:{}: [{}]\n", d.file, d.line, d.rule));
    }
    out
}

/// Splits diagnostics into (new, baselined) against a baseline set.
pub fn apply_baseline(
    diags: Vec<Diagnostic>,
    baseline: &BTreeSet<BaselineEntry>,
) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
    diags
        .into_iter()
        .partition(|d| !baseline.contains(&(d.file.clone(), d.line, d.rule.to_string())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(file: &str, line: usize, rule: &'static str, msg: &str) -> Diagnostic {
        Diagnostic {
            file: file.into(),
            line,
            rule,
            message: msg.into(),
        }
    }

    #[test]
    fn json_escapes_and_counts() {
        let d = vec![diag("a.rs", 3, "no-panic", "say \"hi\"\nthere")];
        let j = to_json(&d);
        assert!(j.contains("\\\"hi\\\"\\nthere"));
        assert!(j.contains("\"count\": 1"));
    }

    #[test]
    fn sarif_lists_all_rules_and_results() {
        let d = vec![diag("a.rs", 3, "no-panic", "m")];
        let s = to_sarif(&d);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"id\": \"lock-order\""));
        assert!(s.contains("\"startLine\": 3"));
    }

    #[test]
    fn baseline_round_trips() {
        let d = vec![
            diag("crates/a/src/lib.rs", 10, "no-panic", "m"),
            diag("crates/b/src/lib.rs", 2, "lock-order", "m"),
        ];
        let text = render_baseline(&d);
        let set = parse_baseline(&text).unwrap_or_default();
        assert_eq!(set.len(), 2);
        let (new, old) = apply_baseline(d, &set);
        assert!(new.is_empty());
        assert_eq!(old.len(), 2);
    }

    #[test]
    fn malformed_baseline_lines_are_errors() {
        assert!(parse_baseline("not an entry\n").is_err());
        assert!(parse_baseline("# comment\n\n").is_ok());
    }
}
