//! Schema audit: classify a portfolio of relational schemas by the
//! paper's chordality/acyclicity taxonomy and report which connection
//! problems are tractable on each.
//!
//! ```sh
//! cargo run --example schema_audit
//! ```

use mcc::prelude::*;
use mcc_datamodel::audit_relational;
use mcc_gen::random_alpha_acyclic;

fn main() {
    let mut schemas: Vec<RelationalSchema> = vec![
        // A textbook 3NF-ish sales schema: a join tree, hence γ-acyclic.
        RelationalSchema::from_lists(
            "sales",
            &["order_id", "customer", "item", "price", "city"],
            &[
                ("ORDERS", &[0, 1]),
                ("LINES", &[0, 2, 3]),
                ("CUSTOMERS", &[1, 4]),
            ],
        ),
        // A covered-triangle schema: α-acyclic but not β-acyclic —
        // Algorithm 1 territory, full Steiner NP-hard (Theorem 2).
        RelationalSchema::from_lists(
            "triangle+root",
            &["a", "b", "c"],
            &[
                ("AB", &[0, 1]),
                ("BC", &[1, 2]),
                ("AC", &[0, 2]),
                ("ABC", &[0, 1, 2]),
            ],
        ),
        // A genuinely cyclic schema.
        RelationalSchema::from_lists(
            "cycle",
            &["a", "b", "c"],
            &[("AB", &[0, 1]), ("BC", &[1, 2]), ("AC", &[0, 2])],
        ),
    ];
    // A generated α-acyclic schema, as a database designer's "what did
    // the tool give me" case.
    let (h, _) = random_alpha_acyclic(Default::default(), 42);
    schemas.push(RelationalSchema::from_hypergraph("generated-42", &h));

    for schema in &schemas {
        match audit_relational(schema) {
            Ok(report) => {
                println!("{report}");
                if let Ok(bg) = schema.to_bipartite() {
                    println!("  shape: {}", mcc::graph::graph_stats(bg.graph()));
                }
                println!();
            }
            Err(e) => println!("schema {:?} is invalid: {e}", schema.name),
        }
    }

    // Summary table.
    println!("=== summary ===");
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>8}",
        "schema", "(4,1)", "(6,2)", "(6,1)", "alpha"
    );
    for schema in &schemas {
        let r = audit_relational(schema).expect("validated above");
        let c = r.classification;
        println!(
            "{:<16} {:>8} {:>8} {:>8} {:>8}",
            schema.name,
            c.four_one,
            c.six_two,
            c.six_one,
            c.h1_alpha_acyclic()
        );
    }
}
