//! The paper's introductory scenario (Fig. 1): a logically independent
//! query over an entity-relationship schema, with ranked alternative
//! interpretations.
//!
//! ```sh
//! cargo run --example er_query
//! ```

use mcc::figures;
use mcc_datamodel::{enumerate_tree_interpretations, DisambiguationSession};
use mcc_graph::NodeSet;

fn main() {
    let schema = figures::fig1();
    println!("ER schema {:?}:", schema.name);
    for e in &schema.entities {
        println!("  entity {} ({})", e.name, e.attributes.join(", "));
    }
    for r in &schema.relationships {
        println!(
            "  relationship {} over ({}) with ({})",
            r.name,
            r.entities.join(", "),
            r.attributes.join(", ")
        );
    }
    println!();

    let er = schema.to_graph().expect("fig1 is valid");
    let g = &er.graph;

    // The user query: "EMPLOYEE, DATE" — no aggregation knowledge needed.
    let query = ["EMPLOYEE", "DATE"];
    println!("query: {query:?}");
    let terminals = NodeSet::from_nodes(
        g.node_count(),
        query.iter().map(|l| er.node(l).expect("concept exists")),
    );

    // Enumerate interpretations, minimal first — the paper's interactive
    // disambiguation loop: disclose as few auxiliary concepts as possible.
    let alternatives = enumerate_tree_interpretations(g, &terminals, 5, 2);
    for (i, tree) in alternatives.iter().enumerate() {
        let objects: Vec<&str> = tree.nodes.iter().map(|v| g.label(v)).collect();
        let arcs: Vec<String> = tree
            .edges
            .iter()
            .map(|(a, b)| format!("{}--{}", g.label(*a), g.label(*b)))
            .collect();
        println!(
            "interpretation {} ({} objects, {} auxiliary): {} via [{}]",
            i + 1,
            tree.node_cost(),
            tree.node_cost() - terminals.len(),
            objects.join(", "),
            arcs.join(", ")
        );
        match i {
            0 => println!("  -> \"list employees with their birthdate\""),
            1 => println!("  -> \"list employees with the date they started in a department\""),
            _ => {}
        }
    }

    // The paper's interactive loop: propose minimal first, disclose more
    // only on rejection.
    println!();
    println!("interactive disambiguation (user rejects the first reading):");
    let mut session = DisambiguationSession::open(g, &terminals, 5, 2).expect("connected query");
    println!(
        "  system: {}",
        session.describe_current().expect("has proposal")
    );
    println!("  user:   no, the other one");
    session.reject();
    if let Some(desc) = session.describe_current() {
        println!("  system: {desc}");
        println!(
            "  (total concepts disclosed so far: {})",
            session.disclosed_count()
        );
    }
    let accepted = session.accept().expect("accepted");
    println!("  accepted: {} objects", accepted.node_cost());
}
