//! Solver comparison on generated workloads: the paper's tractability
//! frontier, observed.
//!
//! On (6,2)-chordal inputs Algorithm 2 matches the exact optimum at a
//! fraction of the cost; off-class the one-pass elimination degrades into
//! a heuristic (cf. Theorem 6), and the exact solver's runtime explodes
//! with the terminal count (cf. Theorem 2).
//!
//! ```sh
//! cargo run --release --example solver_comparison
//! ```

use mcc::prelude::*;
use mcc_gen::{random_bipartite, random_six_two_block_tree, random_terminals};
use mcc_steiner::{algorithm2, steiner_exact, steiner_exact_ids, steiner_kmb};
use std::time::Instant;

fn main() {
    println!("--- on-class: (6,2)-chordal block trees ---");
    println!(
        "{:>4} {:>6} {:>6} {:>7} {:>7} {:>7} {:>10} {:>10}",
        "seed", "nodes", "terms", "alg2", "exact", "kmb", "alg2 us", "exact us"
    );
    for seed in 0..8u64 {
        let shape = mcc_gen::block_tree::BlockTreeShape {
            blocks: 8,
            max_block: 4,
        };
        let bg = random_six_two_block_tree(shape, seed);
        let g = bg.graph().clone();
        let terminals = random_terminals(&g, None, 5, seed + 1000);

        let t0 = Instant::now();
        let a2 = algorithm2(&g, &terminals).expect("block trees are connected");
        let alg2_us = t0.elapsed().as_micros();

        let t0 = Instant::now();
        let exact =
            steiner_exact(&SteinerInstance::new(g.clone(), terminals.clone())).expect("connected");
        let exact_us = t0.elapsed().as_micros();

        let kmb = steiner_kmb(&g, &terminals).expect("connected");
        assert_eq!(a2.node_cost() as u64, exact.cost, "Theorem 5 must hold");
        // Second exact baseline agrees too (different algorithm).
        let ids = steiner_exact_ids(&g, &terminals).expect("connected");
        assert_eq!(ids.cost, exact.cost, "exact solvers must agree");
        println!(
            "{:>4} {:>6} {:>6} {:>7} {:>7} {:>7} {:>10} {:>10}",
            seed,
            g.node_count(),
            terminals.len(),
            a2.node_cost(),
            exact.cost,
            kmb.node_cost(),
            alg2_us,
            exact_us
        );
    }

    println!();
    println!("--- off-class: random bipartite graphs (one-pass elimination as a heuristic) ---");
    println!(
        "{:>4} {:>6} {:>6} {:>7} {:>7} {:>7}  greedy/exact",
        "seed", "nodes", "terms", "greedy", "exact", "kmb"
    );
    let mut worst = 1.0f64;
    for seed in 0..10u64 {
        let bg = random_bipartite(9, 9, 0.25, seed);
        let g = bg.graph().clone();
        let terminals = random_terminals(&g, None, 4, seed + 2000);
        let (Some(greedy), Some(exact), Some(kmb)) = (
            algorithm2(&g, &terminals),
            steiner_exact(&SteinerInstance::new(g.clone(), terminals.clone())),
            steiner_kmb(&g, &terminals),
        ) else {
            println!(
                "{seed:>4} {:>6} {:>6}  (terminals disconnected)",
                g.node_count(),
                terminals.len()
            );
            continue;
        };
        let ratio = greedy.node_cost() as f64 / exact.cost as f64;
        worst = worst.max(ratio);
        println!(
            "{:>4} {:>6} {:>6} {:>7} {:>7} {:>7}  {:.3}",
            seed,
            g.node_count(),
            terminals.len(),
            greedy.node_cost(),
            exact.cost,
            kmb.node_cost(),
            ratio
        );
    }
    println!("worst greedy/exact ratio observed: {worst:.3}");
    println!("(Theorem 5's guarantee is confined to the (6,2)-chordal class.)");

    println!();
    println!("--- solver workspace traffic (SolveStats) ---");
    println!(
        "{:>4} {:>6} {:>10} {:>10} {:>10} {:>12}",
        "seed", "terms", "strategy", "bfs", "elim", "scratch B"
    );
    for seed in 0..4u64 {
        let shape = mcc_gen::block_tree::BlockTreeShape {
            blocks: 8,
            max_block: 4,
        };
        let bg = random_six_two_block_tree(shape, seed);
        let terminals = random_terminals(bg.graph(), None, 5, seed + 1000);
        let solver = Solver::new(bg);
        let sol = solver.solve_steiner(&terminals).expect("connected");
        println!(
            "{:>4} {:>6} {:>10} {:>10} {:>10} {:>12}",
            seed,
            terminals.len(),
            format!("{:?}", sol.strategy),
            sol.stats.bfs_runs,
            sol.stats.elimination_steps,
            sol.stats.scratch_bytes
        );
        // Repeat query through the same solver: the scratch footprint has
        // stabilized (no new buffers), the traffic repeats.
        let again = solver.solve_steiner(&terminals).expect("connected");
        assert_eq!(again.stats.scratch_bytes, sol.stats.scratch_bytes);
    }
    println!("(scratch bytes stay flat across repeat queries: the workspace reuses its buffers)");
}
