//! A walkthrough of the paper's Section 4: good orderings, Corollary 5,
//! and the Theorem 6 counterexample (Fig. 11).
//!
//! ```sh
//! cargo run --example good_orderings
//! ```

use mcc::figures;
use mcc::graph::NodeId;
use mcc::steiner::{eliminate_with_ordering, minimum_cover_bruteforce, ordering_landscape};
use mcc_graph::builder::graph_from_edges;

fn main() {
    // Part 1 — Corollary 5: on a (6,2)-chordal graph EVERY ordering is
    // good. Exhaustively, over all 120 orderings of a 5-node example.
    let six_two = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 4)]);
    let (good, bad) = ordering_landscape(&six_two);
    println!("(6,2)-chordal C4+pendant: {good} good orderings, {bad} bad (Corollary 5)");

    // Part 2 — one chord less: on a (6,1)-chordal graph orderings start
    // to matter, but good ones still exist.
    let mut e: Vec<(usize, usize)> = (0..6).map(|i| (i, (i + 1) % 6)).collect();
    e.push((1, 4));
    let six_one = graph_from_edges(6, &e);
    let (good, bad) = ordering_landscape(&six_one);
    println!("(6,1)-chordal C6+chord:   {good} good orderings, {bad} bad");
    println!();

    // Part 3 — Theorem 6: the Fig. 11 graph has NO good ordering. The
    // proof's case analysis: whichever of A, B, 1, 2 an ordering touches
    // first, one terminal set defeats it.
    let f = figures::fig11();
    let g = f.g.graph();
    println!("Fig. 11 (12 nodes, (6,1)-chordal): the four Theorem 6 cases");
    println!(
        "{:<8} {:<22} {:>7} {:>8}",
        "first", "terminal set", "greedy", "minimum"
    );
    for (first, terms) in &f.cases {
        let mut order: Vec<NodeId> = vec![*first];
        order.extend(g.nodes().filter(|v| v != first));
        let got = eliminate_with_ordering(g, &order, terms)
            .expect("feasible")
            .len();
        let min = minimum_cover_bruteforce(g, terms).expect("feasible").len();
        let labels: Vec<&str> = terms.iter().map(|v| g.label(v)).collect();
        println!(
            "{:<8} {:<22} {:>7} {:>8}",
            g.label(*first),
            format!("{{{}}}", labels.join(", ")),
            got,
            min
        );
    }
    println!();
    println!("Every ordering puts one of A, B, 1, 2 first among the four,");
    println!("so every ordering fails at least one terminal set: no good");
    println!("ordering exists — yet each case alone is solvable by an");
    println!("ordering that defers its central node (run the tests to see).");
}
