//! Quickstart: build a schema graph, classify it, and find minimal
//! connections with the auto-dispatching solver.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use mcc::prelude::*;
use mcc_graph::bipartite::bipartite_from_lists;

fn main() {
    // A small library schema as a bipartite graph: attributes on V1,
    // relations on V2.
    //   LOANS(reader, book, due)   BOOKS(book, title)   READERS(reader, name)
    let bg = bipartite_from_lists(
        &["reader", "book", "due", "title", "name"],
        &["LOANS", "BOOKS", "READERS"],
        &[
            (0, 0),
            (1, 0),
            (2, 0), // LOANS
            (1, 1),
            (3, 1), // BOOKS
            (0, 2),
            (4, 2), // READERS
        ],
    );

    // 1. Classify: which of the paper's chordality/acyclicity classes
    //    does this schema satisfy, and what does that buy us?
    let classification = classify_bipartite(&bg);
    println!("=== classification ===");
    println!("{classification}");
    println!();

    // 2. Solve: connect `name` and `title` with the fewest objects.
    let solver = Solver::new(bg);
    let g = solver.graph().graph();
    let terminals = NodeSet::from_nodes(
        g.node_count(),
        ["name", "title"]
            .iter()
            .map(|l| g.node_by_label(l).expect("known label")),
    );
    let sol = solver
        .solve_steiner(&terminals)
        .expect("schema is connected");

    println!("=== minimal connection: name -- title ===");
    println!(
        "strategy: {:?} (optimal: {})",
        sol.strategy,
        sol.strategy.optimal()
    );
    println!("objects used ({}):", sol.cost);
    for v in sol.tree.nodes.iter() {
        println!("  {}", g.label(v));
    }
    println!("arcs:");
    for (a, b) in &sol.tree.edges {
        println!("  {} -- {}", g.label(*a), g.label(*b));
    }

    // 3. Pseudo-Steiner: the same query minimizing only the *relation*
    //    count (the paper's Algorithm 1 territory).
    let pseudo = solver
        .solve_pseudo(&terminals, Side::V2)
        .expect("schema is alpha-acyclic");
    println!();
    println!("=== minimum-relation connection ===");
    println!(
        "strategy: {:?}, relations used: {}",
        pseudo.strategy, pseudo.cost
    );
}
