//! End-to-end tests of the query interface over semantic data models —
//! the universal-relation scenario of the paper's introduction and
//! conclusions.

use mcc::prelude::*;
use mcc_datamodel::{audit_relational, enumerate_tree_interpretations, Strategy};
use mcc_hypergraph::AcyclicityDegree;

/// A small university schema that is γ-acyclic (interval-structured), so
/// every query gets a true minimum connection via Algorithm 2.
fn university() -> RelationalSchema {
    RelationalSchema::from_lists(
        "university",
        &["student", "course", "grade", "lecturer", "room"],
        &[
            ("ENROLLED", &[0, 1, 2]),
            ("TEACHES", &[1, 3]),
            ("LOCATED", &[3, 4]),
        ],
    )
}

/// An α-but-not-β-acyclic schema (the covered triangle), where only
/// minimum-relation connections are tractable.
fn alpha_schema() -> RelationalSchema {
    RelationalSchema::from_lists(
        "alpha",
        &["a", "b", "c", "x", "y", "z"],
        &[
            ("R_AB", &[0, 1, 3]),
            ("R_BC", &[1, 2, 4]),
            ("R_AC", &[0, 2, 5]),
            ("R_ABC", &[0, 1, 2]),
        ],
    )
}

#[test]
fn university_queries_use_algorithm2_and_are_minimal() {
    let audit = audit_relational(&university()).unwrap();
    assert!(audit.classification.six_two);
    let engine = QueryEngine::new(university()).unwrap();

    let it = engine.connect(&["student", "room"]).unwrap();
    assert_eq!(it.strategy, Strategy::Algorithm2);
    // student → ENROLLED → course → TEACHES → lecturer → LOCATED → room.
    assert_eq!(it.relations.len(), 3);
    assert!(it.tree.is_valid_tree(engine.graph().graph()));

    // Verify minimality against the exact solver.
    let terminals = engine.resolve(&["student", "room"]).unwrap();
    let exact = mcc_steiner::steiner_exact(&SteinerInstance::new(
        engine.graph().graph().clone(),
        terminals,
    ))
    .unwrap();
    assert_eq!(it.node_cost() as u64, exact.cost);
}

#[test]
fn alpha_schema_minimizes_relations() {
    let audit = audit_relational(&alpha_schema()).unwrap();
    assert_eq!(audit.degree, AcyclicityDegree::Alpha);
    assert!(audit.recommendation().contains("Algorithm 1"));

    let engine = QueryEngine::new(alpha_schema()).unwrap();
    let it = engine.connect(&["x", "y"]).unwrap();
    assert_eq!(it.strategy, Strategy::Algorithm1);
    // x lives only in R_AB, y only in R_BC: two relations are forced and
    // suffice (they share attribute b).
    assert_eq!(it.relations.len(), 2);
    assert!(it.relations.contains(&"R_AB".to_string()));
    assert!(it.relations.contains(&"R_BC".to_string()));
}

#[test]
fn queries_mixing_levels() {
    let engine = QueryEngine::new(university()).unwrap();
    // Relation + attribute in the same query.
    let it = engine.connect(&["ENROLLED", "lecturer"]).unwrap();
    assert!(it.relations.contains(&"ENROLLED".to_string()));
    assert!(it.relations.contains(&"TEACHES".to_string()));
    assert!(it.attributes.contains(&"course".to_string()));
}

#[test]
fn interpretations_are_ranked_by_disclosure() {
    // In the university schema, student–grade has the direct ENROLLED
    // interpretation; alternatives must disclose strictly more concepts.
    let engine = QueryEngine::new(university()).unwrap();
    let terminals = engine.resolve(&["student", "grade"]).unwrap();
    let alts = enumerate_tree_interpretations(engine.graph().graph(), &terminals, 5, 2);
    assert!(!alts.is_empty());
    assert_eq!(alts[0].node_cost(), 3); // student-ENROLLED-grade
    for w in alts.windows(2) {
        assert!(
            w[0].node_cost() <= w[1].node_cost(),
            "ranking must be monotone"
        );
    }
}

#[test]
fn audit_report_renders() {
    let report = audit_relational(&university()).unwrap();
    let text = report.to_string();
    assert!(text.contains("university"));
    assert!(text.contains("Algorithm 2"));
    let report = audit_relational(&alpha_schema()).unwrap();
    assert!(report.to_string().contains("Algorithm 1"));
}

#[test]
fn fig1_as_er_query_pipeline() {
    // The ER-level pipeline of the introduction, end to end: schema →
    // concept graph → minimal connection → alternatives.
    let er = mcc::figures::fig1().to_graph().unwrap();
    let g = &er.graph;
    let terminals = NodeSet::from_nodes(
        g.node_count(),
        [er.node("EMPLOYEE").unwrap(), er.node("DATE").unwrap()],
    );
    let alts = enumerate_tree_interpretations(g, &terminals, 4, 3);
    // Interpretation 1: direct arc (2 nodes). Interpretation 2: via
    // WORKS (3 nodes). Both are offered, minimal first.
    assert!(alts.len() >= 2);
    assert_eq!(alts[0].node_cost(), 2);
    assert_eq!(alts[1].node_cost(), 3);
}
