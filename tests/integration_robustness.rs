//! Robustness of the governed solver: degenerate terminal sets, budget
//! trips, the degradation ladder, and a never-panic property sweep.
//!
//! These tests pin the contract of the resource-governance layer: every
//! failure is a typed [`mcc::SolveError`] value, a tripped exact attempt
//! degrades to the heuristic inside the same deadline, and no input —
//! however degenerate — unwinds out of `Solver`.

use mcc::prelude::*;
use mcc::{BudgetKind, SolverConfig};
use mcc_gen::{random_bipartite, random_six_two_block_tree, random_terminals};
use mcc_graph::bipartite::bipartite_from_lists;
use mcc_graph::{connected_components, NodeId};
use mcc_steiner::is_steiner_tree_for;
use proptest::prelude::*;
use std::time::{Duration, Instant};

/// An off-class instance: a 4-cycle in the bipartite graph (C8 as a
/// graph) is not (6,2)-chordal, so the solver routes past Algorithm 2.
fn off_class() -> BipartiteGraph {
    bipartite_from_lists(
        &["a", "b", "c", "d"],
        &["R", "S", "T", "U"],
        &[
            (0, 0),
            (1, 0),
            (1, 1),
            (2, 1),
            (2, 2),
            (3, 2),
            (3, 3),
            (0, 3),
        ],
    )
}

#[test]
fn empty_terminal_set_solves_trivially_on_every_route() {
    for solver in [
        Solver::new(random_six_two_block_tree(Default::default(), 1)),
        Solver::new(off_class()),
    ] {
        let n = solver.graph().graph().node_count();
        let sol = solver.solve_steiner(&NodeSet::new(n)).expect("empty query");
        assert_eq!(sol.cost, 0);
        assert!(sol.tree.edges.is_empty());
        assert!(sol.degraded.is_none());
    }
}

#[test]
fn single_terminal_is_its_own_connection() {
    for solver in [
        Solver::new(random_six_two_block_tree(Default::default(), 2)),
        Solver::new(off_class()),
    ] {
        let n = solver.graph().graph().node_count();
        let terminals = NodeSet::from_nodes(n, [NodeId(0)]);
        let sol = solver.solve_steiner(&terminals).expect("single terminal");
        assert_eq!(sol.cost, 1);
        assert!(sol.tree.nodes.contains(NodeId(0)));
    }
}

#[test]
fn disconnected_terminals_are_a_typed_error_not_a_panic() {
    // Two disjoint attribute/relation pairs.
    let bg = bipartite_from_lists(&["a", "b"], &["R", "S"], &[(0, 0), (1, 1)]);
    let n = bg.graph().node_count();
    let solver = Solver::new(bg);
    let terminals = NodeSet::from_nodes(n, [NodeId(0), NodeId(1)]);
    assert_eq!(
        solver.solve_steiner(&terminals).unwrap_err(),
        SolveError::Disconnected
    );
    assert_eq!(
        solver.solve_pseudo(&terminals, Side::V2).unwrap_err(),
        SolveError::Disconnected
    );
}

#[test]
fn duplicate_terminals_collapse_into_the_set() {
    let solver = Solver::new(off_class());
    let n = solver.graph().graph().node_count();
    // NodeSet semantics: inserting a node twice is the same terminal set.
    let once = NodeSet::from_nodes(n, [NodeId(0), NodeId(2)]);
    let twice = NodeSet::from_nodes(n, [NodeId(0), NodeId(2), NodeId(0), NodeId(2)]);
    assert_eq!(once, twice);
    let a = solver.solve_steiner(&once).expect("connected");
    let b = solver.solve_steiner(&twice).expect("connected");
    assert_eq!(a.cost, b.cost);
}

#[test]
fn every_node_as_terminal_spans_the_graph() {
    for solver in [
        Solver::new(random_six_two_block_tree(Default::default(), 3)),
        Solver::new(off_class()),
    ] {
        let g = solver.graph().graph().clone();
        let n = g.node_count();
        let all = NodeSet::full(n);
        if connected_components(&g, &all).len() > 1 {
            assert_eq!(
                solver.solve_steiner(&all).unwrap_err(),
                SolveError::Disconnected
            );
            continue;
        }
        let sol = solver
            .solve_steiner(&all)
            .expect("connected spanning solve");
        assert_eq!(sol.cost, n, "a spanning connection uses every node");
        assert!(is_steiner_tree_for(&g, &sol.tree, &all));
    }
}

/// The acceptance scenario's mechanism, parameterized by scale: k=24
/// random terminals on an off-class graph under a 100 ms budget. The
/// exact route's DP table projection (2^24 masks × n nodes) trips the
/// byte cap during admission — microseconds, not minutes — and the
/// ladder hands the remaining deadline to the heuristic, which answers
/// in time. Only the *solve* is budgeted; the caller pays the one-time
/// classification at `Solver` construction.
fn assert_degrades_under_100ms_budget(n_side: usize, p: f64, seed: u64) {
    let bg = random_bipartite(n_side, n_side, p, seed);
    let g = bg.graph().clone();
    assert!(g.node_count() >= 2 * n_side);
    let solver = Solver::with_config(
        bg,
        SolverConfig {
            max_exact_terminals: 24,
            budget: SolveBudget::with_deadline(Duration::from_millis(100)),
            ..SolverConfig::default()
        },
    );
    assert!(
        !solver.classification().six_two,
        "instance must be off-class so the exact route is attempted"
    );
    // Keep the query feasible: draw terminals from the largest component.
    let component = connected_components(&g, &NodeSet::full(g.node_count()))
        .into_iter()
        .max_by_key(|c| c.len())
        .expect("nonempty graph");
    assert!(component.len() >= 24, "giant component expected");
    let terminals = random_terminals(&g, Some(&component), 24, 7);
    assert_eq!(terminals.len(), 24);

    let t0 = Instant::now();
    let sol = solver
        .solve_steiner(&terminals)
        .expect("must degrade, not fail");
    let took = t0.elapsed();

    assert_eq!(sol.strategy, SteinerStrategy::Heuristic);
    let d = sol
        .degraded
        .expect("exact attempt must be recorded as degraded");
    assert_eq!(d.from, mcc::Stage::ExactDp);
    assert_eq!(d.reason.kind, BudgetKind::DpTableBytes);
    assert!(is_steiner_tree_for(&g, &sol.tree, &terminals));
    assert!(sol.stats.budget_checks > 0);
    // Generous bound: the point is "no hang", not a micro-benchmark.
    assert!(took < Duration::from_secs(10), "took {took:?}");
}

/// Fast (debug-suite) rendition of the ladder at ~500 nodes.
#[test]
fn budgeted_solve_off_class_degrades_not_hangs() {
    assert_degrades_under_100ms_budget(250, 0.01, 42);
}

/// The issue's full acceptance scenario at ~2000 nodes. The solve is
/// milliseconds; the unbudgeted classification at construction is what
/// makes this a scale test (minutes in debug, seconds in release) — the
/// CI budget job runs it with `--release -- --include-ignored`.
#[test]
#[ignore = "2k-node scale test; run explicitly (release)"]
fn budgeted_solve_on_large_off_class_graph_degrades_not_hangs() {
    assert_degrades_under_100ms_budget(1000, 0.002, 42);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random graphs × random terminal sets: the governed solver always
    /// returns a value, and only the two legitimate outcomes appear —
    /// a certified tree or `Disconnected`. `Internal` (a caught panic or
    /// broken invariant) fails the property.
    #[test]
    fn solver_never_panics_on_random_inputs(
        n1 in 1usize..8,
        n2 in 1usize..8,
        density in 0u32..4,
        k in 0usize..6,
        seed in 0u64..1000,
    ) {
        let bg = random_bipartite(n1, n2, f64::from(density) * 0.15, seed);
        let g = bg.graph().clone();
        let k = k.min(g.node_count());
        let terminals = random_terminals(&g, None, k, seed ^ 0x9e37);
        let solver = Solver::new(bg);
        match solver.solve_steiner(&terminals) {
            Ok(sol) => {
                prop_assert!(terminals.is_subset_of(&sol.tree.nodes));
                if !terminals.is_empty() {
                    prop_assert!(is_steiner_tree_for(&g, &sol.tree, &terminals));
                }
                prop_assert_eq!(sol.cost, sol.tree.node_cost());
            }
            Err(SolveError::Disconnected) => {}
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
        for side in [Side::V1, Side::V2] {
            match solver.solve_pseudo(&terminals, side) {
                Ok(sol) => prop_assert!(terminals.is_subset_of(&sol.tree.nodes)),
                Err(SolveError::Disconnected) => {}
                Err(e) => prop_assert!(false, "unexpected pseudo error: {e}"),
            }
        }
    }
}
