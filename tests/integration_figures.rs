//! Cross-crate integration tests over the reconstructed paper figures —
//! the per-figure experiments F1–F11 of DESIGN.md.

use mcc::figures;
use mcc::prelude::*;
use mcc_chordality::{is_chordal, is_chordal_bipartite_via_beta, project_onto};
use mcc_datamodel::enumerate_tree_interpretations;
use mcc_hypergraph::{
    gyo_reduce, is_alpha_acyclic, is_berge_acyclic, is_beta_acyclic, is_conformal, is_gamma_acyclic,
};
use mcc_steiner::{eliminate_with_ordering, minimum_cover_bruteforce, steiner_exact};

#[test]
fn f1_employee_date_interpretations() {
    let schema = figures::fig1();
    let er = schema.to_graph().expect("fig1 is a valid ER schema");
    let g = &er.graph;
    let emp = er.node("EMPLOYEE").unwrap();
    let date = er.node("DATE").unwrap();
    let terminals = NodeSet::from_nodes(g.node_count(), [emp, date]);

    let alts = enumerate_tree_interpretations(g, &terminals, 5, 2);
    assert!(alts.len() >= 2);
    // "list employees with their birthdate": no auxiliary objects.
    assert_eq!(alts[0].node_cost(), 2);
    // "the date from which they work in a department": via WORKS.
    let works = er.node("WORKS").unwrap();
    assert!(alts[1].nodes.contains(works));
    // The minimal interpretation is what the exact solver returns.
    let sol = steiner_exact(&SteinerInstance::new(g.clone(), terminals.clone())).unwrap();
    assert_eq!(sol.cost, 2);
}

#[test]
fn f2_h1_alpha_h2_not() {
    let f = figures::fig2();
    // Three independent alpha tests agree on both sides.
    assert!(is_alpha_acyclic(&f.h1));
    assert!(gyo_reduce(&f.h1).acyclic);
    assert!(is_chordal(&mcc_hypergraph::primal_graph(&f.h1)) && is_conformal(&f.h1));
    assert!(!is_alpha_acyclic(&f.h2));
    assert!(!gyo_reduce(&f.h2).acyclic);
    assert!(!(is_chordal(&mcc_hypergraph::primal_graph(&f.h2)) && is_conformal(&f.h2)));
}

#[test]
fn f3_f4_theorem1_correspondence() {
    let f3 = figures::fig3();
    let f4 = figures::fig4();
    // (a): (4,1) ⟺ Berge-acyclic.
    assert!(mcc_chordality::is_forest(f3.a.graph()));
    assert!(is_berge_acyclic(&f4.berge));
    // (b): (6,2) ⟺ γ-acyclic.
    assert!(mcc_chordality::is_six_two_chordal(&f3.b));
    assert!(is_gamma_acyclic(&f4.gamma));
    assert!(!is_berge_acyclic(&f4.gamma));
    // (c): (6,1) ⟺ β-acyclic.
    assert!(mcc_chordality::is_chordal_bipartite(f3.c.graph()));
    assert!(is_chordal_bipartite_via_beta(&f3.c));
    assert!(is_beta_acyclic(&f4.beta));
    assert!(!is_gamma_acyclic(&f4.beta));
}

#[test]
fn f5_projections_are_chordal_both_ways() {
    let f = figures::fig5();
    // Both projections chordal (the V-chordality halves of Theorem 1 v/vi).
    let (p1, _) = project_onto(&f, Side::V1);
    let (p2, _) = project_onto(&f, Side::V2);
    assert!(is_chordal(&p1));
    assert!(is_chordal(&p2));
    // And yet a chordless 6-cycle exists in the graph itself.
    assert!(!mcc_chordality::is_chordal_bipartite(f.graph()));
}

#[test]
fn f6_x3c_equivalence_both_directions() {
    let g = figures::fig6();
    // Forward: the known cover {c1, c3} gives a threshold tree.
    let tree = g.tree_from_cover(&[0, 2]).unwrap();
    assert_eq!(tree.node_cost(), g.threshold());
    // Backward: the exact optimum meets the threshold and decodes to an
    // exact cover.
    let sol = steiner_exact(&SteinerInstance::new(
        g.graph.graph().clone(),
        g.terminals(),
    ))
    .unwrap();
    assert_eq!(sol.cost as usize, g.threshold());
    let cover = g.extract_cover(&sol.tree).unwrap();
    assert!(g.instance.is_exact_cover(&cover));
}

#[test]
fn f8_cover_taxonomy_is_strict() {
    let f = figures::fig8();
    let g = f.g.graph();
    // The four sets are pairwise distinct demonstrations.
    assert_ne!(f.nonredundant, f.minimum);
    assert_ne!(f.v1_nonredundant, f.v1_minimum);
    // Minimum covers are nonredundant but not conversely.
    let min = minimum_cover_bruteforce(g, &f.terminals).unwrap();
    assert!(mcc_steiner::is_nonredundant_cover(g, &min, &f.terminals));
    assert!(mcc_steiner::is_nonredundant_cover(
        g,
        &f.nonredundant,
        &f.terminals
    ));
    assert!(f.nonredundant.len() > min.len());
}

#[test]
fn f9_cspc_gadget_agrees_with_source() {
    let g = figures::fig9();
    let terms = NodeSet::from_nodes(g.source.node_count(), [NodeId(0), NodeId(4)]);
    let lifted = g.lift_terminals(&terms);
    let n = g.source.node_count();
    let weights: Vec<u64> = (0..g.graph.graph().node_count())
        .map(|i| u64::from(i >= n))
        .collect();
    let sol = mcc_steiner::steiner_exact_node_weighted(g.graph.graph(), &lifted, &weights).unwrap();
    assert_eq!(Some(sol.cost as usize), g.cspc_bruteforce(&terms));
}

#[test]
fn f10_nonredundant_path_dichotomy() {
    let f = figures::fig10();
    let g = f.g.graph();
    // On this (6,1)-but-not-(6,2) graph, Lemma 4's equivalence fails in
    // the expected direction: a nonredundant path that is not minimum.
    assert!(mcc_steiner::is_nonredundant_path(g, &f.long_path));
    assert!(!mcc_steiner::is_minimum_path(g, &f.long_path));
    // On a (6,2)-chordal graph the dichotomy cannot happen: check all
    // nonredundant paths of fig3(b) are minimum (Lemma 4 forward).
    let f3 = figures::fig3();
    let gb = f3.b.graph();
    // Enumerate simple paths by DFS and test each.
    let mut stack: Vec<Vec<NodeId>> = gb.nodes().map(|v| vec![v]).collect();
    while let Some(path) = stack.pop() {
        let last = *path.last().unwrap();
        for &next in gb.neighbors(last) {
            if path.contains(&next) {
                continue;
            }
            let mut p2 = path.clone();
            p2.push(next);
            if mcc_steiner::is_nonredundant_path(gb, &p2) {
                assert!(
                    mcc_steiner::is_minimum_path(gb, &p2),
                    "Lemma 4 violated by {p2:?}"
                );
            }
            stack.push(p2);
        }
    }
}

#[test]
fn f11_theorem6_case_analysis() {
    let f = figures::fig11();
    let g = f.g.graph();
    let central: Vec<NodeId> = f.cases.iter().map(|(v, _)| *v).collect();

    for (first, bad_terms) in &f.cases {
        // Build several orderings in which `first` precedes the other
        // central nodes: first at the very front; first after all
        // peripheral nodes; and a reversed-peripheral variant.
        let others: Vec<NodeId> = central.iter().copied().filter(|v| v != first).collect();
        let peripheral: Vec<NodeId> = g.nodes().filter(|v| !central.contains(v)).collect();
        let mut orderings: Vec<Vec<NodeId>> = Vec::new();
        let mut o1 = vec![*first];
        o1.extend(peripheral.iter().copied());
        o1.extend(others.iter().copied());
        orderings.push(o1);
        let mut o2: Vec<NodeId> = peripheral.clone();
        o2.push(*first);
        o2.extend(others.iter().copied());
        orderings.push(o2);
        let mut o3: Vec<NodeId> = peripheral.iter().rev().copied().collect();
        o3.push(*first);
        o3.extend(others.iter().rev().copied());
        orderings.push(o3);

        let min = minimum_cover_bruteforce(g, bad_terms)
            .expect("feasible")
            .len();
        for order in orderings {
            let got = eliminate_with_ordering(g, &order, bad_terms).expect("feasible");
            assert!(
                got.len() > min,
                "ordering starting at {:?} should fail terminals {:?} (got {} = min {})",
                g.label(*first),
                bad_terms,
                got.len(),
                min
            );
        }
    }
}

#[test]
fn f11_each_case_is_individually_solvable() {
    // Theorem 6 says no ordering is good for *all* terminal sets; each
    // single case is still solvable by an ordering that defers its
    // central node to the very end.
    let f = figures::fig11();
    let g = f.g.graph();
    for (first, terms) in &f.cases {
        let mut order: Vec<NodeId> = g.nodes().filter(|v| v != first).collect();
        order.push(*first);
        let got = eliminate_with_ordering(g, &order, terms).expect("feasible");
        let min = minimum_cover_bruteforce(g, terms).unwrap().len();
        assert_eq!(
            got.len(),
            min,
            "deferring {:?} should solve its case",
            g.label(*first)
        );
    }
}
