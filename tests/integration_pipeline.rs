//! Generator → recognizer → solver → certificate pipelines: the glue the
//! benchmark harness relies on, exercised at test scale.

use mcc::prelude::*;
use mcc_chordality::classify_bipartite;
use mcc_gen::{
    random_alpha_acyclic, random_bipartite, random_interval_hypergraph, random_six_two_block_tree,
    random_terminals, random_tree_bipartite,
};
use mcc_hypergraph::{h1_of_bipartite, AcyclicityDegree};
use mcc_steiner::is_steiner_tree_for;

/// Every generator lands in its advertised class, per the recognizers.
#[test]
fn generators_land_on_their_classes() {
    for seed in 0..4 {
        let tree = random_tree_bipartite(12, seed);
        assert!(classify_bipartite(&tree).four_one, "tree seed {seed}");

        let bt = random_six_two_block_tree(Default::default(), seed);
        assert!(classify_bipartite(&bt).six_two, "block seed {seed}");

        let (_, iv) = random_interval_hypergraph(Default::default(), seed);
        assert!(classify_bipartite(&iv).six_one, "interval seed {seed}");

        let (_, jt) = random_alpha_acyclic(Default::default(), seed);
        assert!(
            classify_bipartite(&jt).h1_alpha_acyclic(),
            "join-tree seed {seed}"
        );
    }
}

/// The containment chain of Corollary 2 shows up on generated instances:
/// each stronger generator's output also satisfies the weaker classes.
#[test]
fn corollary2_containments_on_generated_instances() {
    for seed in 0..4 {
        for bg in [
            random_tree_bipartite(10, seed),
            random_six_two_block_tree(Default::default(), seed),
            random_interval_hypergraph(Default::default(), seed).1,
        ] {
            let c = classify_bipartite(&bg);
            if c.four_one {
                assert!(c.six_two);
            }
            if c.six_two {
                assert!(c.six_one);
            }
            if c.six_one {
                assert!(c.h1_alpha_acyclic() && c.h2_alpha_acyclic());
            }
        }
    }
}

/// Solver pipeline on every family: solve, then certify the tree
/// independently.
#[test]
fn solve_and_certify_across_families() {
    for seed in 0..4 {
        let instances: Vec<BipartiteGraph> = vec![
            random_tree_bipartite(14, seed),
            random_six_two_block_tree(Default::default(), seed),
            random_interval_hypergraph(Default::default(), seed).1,
            random_alpha_acyclic(Default::default(), seed).1,
        ];
        for (i, bg) in instances.into_iter().enumerate() {
            let g = bg.graph().clone();
            let terminals = random_terminals(&g, None, 3, seed * 31 + i as u64);
            let solver = Solver::new(bg);
            match solver.solve_steiner(&terminals) {
                Ok(sol) => {
                    assert!(
                        is_steiner_tree_for(&g, &sol.tree, &terminals),
                        "family {i} seed {seed}"
                    );
                    assert_eq!(sol.cost, sol.tree.node_cost());
                }
                Err(mcc::SolverError::Disconnected) => {
                    // Fine: terminals may span components on sparse inputs.
                }
                Err(e) => panic!("unexpected solver error: {e}"),
            }
        }
    }
}

/// The hypergraph view of a generated bipartite graph classifies
/// consistently with the graph view (Theorem 1, at pipeline scale).
#[test]
fn theorem1_holds_on_generated_workloads() {
    for seed in 0..4 {
        // Dense-ish random bipartite graphs, cleaned of isolated V2 nodes.
        let bg = random_bipartite(5, 5, 0.45, seed);
        let cleaned = mcc_chordality::chordal_bipartite::drop_isolated_v2(&bg);
        let c = classify_bipartite(&cleaned);
        let (h1, _, _) = h1_of_bipartite(&cleaned).expect("cleaned");
        let degree = AcyclicityDegree::of(&h1);
        assert_eq!(c.four_one, degree >= AcyclicityDegree::Berge, "seed {seed}");
        assert_eq!(c.six_two, degree >= AcyclicityDegree::Gamma, "seed {seed}");
        assert_eq!(c.six_one, degree >= AcyclicityDegree::Beta, "seed {seed}");
        assert_eq!(
            c.h1_alpha_acyclic(),
            degree >= AcyclicityDegree::Alpha,
            "seed {seed}"
        );
    }
}

/// Schema round trip: hypergraph → relational schema → bipartite graph →
/// hypergraph preserves structure.
#[test]
fn schema_roundtrip_through_every_representation() {
    for seed in 0..4 {
        let (h, _) = random_alpha_acyclic(Default::default(), seed);
        let schema = RelationalSchema::from_hypergraph("generated", &h);
        let h2 = schema.to_hypergraph().expect("valid by construction");
        assert!(
            mcc_hypergraph::dual::index_identical(&h, &h2),
            "seed {seed}"
        );
        let bg = schema.to_bipartite().expect("valid");
        let (h3, _, _) = h1_of_bipartite(&bg).expect("no isolated relations");
        assert!(
            mcc_hypergraph::dual::index_identical(&h, &h3),
            "seed {seed}"
        );
    }
}

/// Scale check: Algorithms 1 and 2 handle thousand-node instances in
/// well under a second each (Theorems 4 and 5 are about polynomial
/// bounds; this pins the constant factors at a usable order). Run with
/// `cargo test --workspace -- --ignored`.
#[test]
#[ignore = "scale test; run explicitly"]
fn algorithms_scale_to_thousands_of_nodes() {
    use std::time::Instant;

    // Algorithm 2 on a ~2000-node block tree.
    let bg = random_six_two_block_tree(
        mcc_gen::block_tree::BlockTreeShape {
            blocks: 400,
            max_block: 4,
        },
        7,
    );
    let g = bg.graph();
    assert!(g.node_count() > 1500, "got {}", g.node_count());
    let terminals = random_terminals(g, None, 12, 99);
    let t0 = Instant::now();
    let tree = mcc::steiner::algorithm2(g, &terminals).expect("block trees are connected");
    let alg2 = t0.elapsed();
    assert!(terminals.is_subset_of(&tree.nodes));
    assert!(alg2.as_secs() < 30, "Algorithm 2 took {alg2:?}");

    // Algorithm 1 on a ~1500-relation join-tree schema.
    let (_, bg) = random_alpha_acyclic(
        mcc_gen::join_tree::JoinTreeShape {
            num_edges: 1500,
            max_shared: 3,
            max_fresh: 2,
        },
        11,
    );
    assert!(bg.graph().node_count() > 1500);
    let terminals = random_terminals(bg.graph(), Some(&bg.v1_set()), 10, 5);
    let t0 = Instant::now();
    let out = mcc::steiner::algorithm1(&bg, &terminals).expect("on-class");
    let alg1 = t0.elapsed();
    assert!(out.tree.is_valid_tree(bg.graph()));
    assert!(alg1.as_secs() < 30, "Algorithm 1 took {alg1:?}");

    println!(
        "scale: algorithm2 on {} nodes in {alg2:?}; algorithm1 on {} nodes in {alg1:?}",
        g.node_count(),
        bg.graph().node_count()
    );
}

/// Scale check for the recognizers: full classification of a ~700-node
/// schema stays in seconds.
#[test]
#[ignore = "scale test; run explicitly"]
fn classification_scales() {
    use std::time::Instant;
    let bg = random_six_two_block_tree(
        mcc_gen::block_tree::BlockTreeShape {
            blocks: 150,
            max_block: 4,
        },
        3,
    );
    let t0 = Instant::now();
    let c = classify_bipartite(&bg);
    let took = t0.elapsed();
    assert!(c.six_two);
    assert!(took.as_secs() < 60, "classification took {took:?}");
    println!("classified {} nodes in {took:?}", bg.graph().node_count());
}
