//! Differential and metamorphic verification of the solver's routing
//! contract (satellite of the observability PR, but solver-facing).
//!
//! Two families of oracle:
//!
//! * **Relabeling invariance** — a Steiner/pseudo-Steiner cost is a
//!   graph *property*, so it must be invariant under vertex relabeling
//!   permutations. Algorithms 1 and 2 walk elimination orders derived
//!   from node numbering; if any step accidentally depended on the
//!   numbering rather than the structure, a random permutation would
//!   expose it as a cost difference.
//! * **Exact differential** — on small instances the Dreyfus–Wagner DP
//!   is an independent ground truth: routes that claim optimality
//!   (Algorithm 2, exact, Algorithm 1 under V₂ weights) must *equal*
//!   it, and the KMB heuristic must never beat it (cost ≥ exact).

use mcc::prelude::*;
use mcc::SolverConfig;
use mcc_gen::block_tree::BlockTreeShape;
use mcc_gen::join_tree::JoinTreeShape;
use mcc_gen::{
    random_alpha_acyclic, random_bipartite, random_six_two_block_tree, random_terminals,
};
use mcc_graph::Side;
use mcc_steiner::{steiner_exact, steiner_exact_node_weighted, SteinerInstance};
use proptest::prelude::*;

/// splitmix64 — the tests own their permutation stream, so the suite
/// needs no extra dev-dependencies and every run is reproducible from
/// the seed printed in a failure.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform random permutation of `0..n` (Fisher–Yates), `perm[old] = new`.
fn random_permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    let mut s = seed;
    for i in (1..n).rev() {
        let j = (splitmix64(&mut s) % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

/// Relabels `bg`'s vertices through `perm` (labels, adjacency, and side
/// assignments all move together) and maps `terminals` along. The result
/// is isomorphic to the input, so every cost-type query must answer the
/// same number.
fn relabel(bg: &BipartiteGraph, terminals: &NodeSet, perm: &[usize]) -> (BipartiteGraph, NodeSet) {
    let g = bg.graph();
    let n = g.node_count();
    let mut inv = vec![0usize; n];
    for (old, &new) in perm.iter().enumerate() {
        inv[new] = old;
    }
    let mut b = Graph::builder();
    for &old in &inv {
        b.add_node(g.label(NodeId::from_index(old)));
    }
    for (a, c) in g.edges() {
        b.add_edge(
            NodeId::from_index(perm[a.index()]),
            NodeId::from_index(perm[c.index()]),
        )
        .expect("permuted edge endpoints are in range");
    }
    let side: Vec<Side> = inv
        .iter()
        .map(|&old| bg.side(NodeId::from_index(old)))
        .collect();
    let pg = BipartiteGraph::new(b.build(), side).expect("isomorphic image stays bipartite");
    let pt = NodeSet::from_nodes(
        n,
        terminals
            .iter()
            .map(|v| NodeId::from_index(perm[v.index()])),
    );
    (pg, pt)
}

/// The exact optimum for the same instance the solver saw, as a plain
/// node count (unit weights).
fn exact_cost(bg: &BipartiteGraph, terminals: &NodeSet) -> Option<usize> {
    let inst = SteinerInstance::new(bg.graph().clone(), terminals.clone());
    steiner_exact(&inst).map(|sol| sol.cost as usize)
}

/// The exact V₂-minimum connection cost: weight 1 on V₂ nodes, 0 on V₁,
/// so the weighted DP minimizes exactly what Algorithm 1 minimizes.
fn exact_v2_cost(bg: &BipartiteGraph, terminals: &NodeSet) -> Option<usize> {
    let w: Vec<u64> = bg
        .graph()
        .nodes()
        .map(|v| u64::from(bg.side(v) == Side::V2))
        .collect();
    steiner_exact_node_weighted(bg.graph(), terminals, &w).map(|sol| sol.cost as usize)
}

// ---------------------------------------------------------------------
// In-class: Algorithm 2 ((6,2)-chordal block trees)
// ---------------------------------------------------------------------

#[test]
fn algorithm2_cost_invariant_under_relabeling_and_equals_exact() {
    for seed in 0..12u64 {
        let bg = random_six_two_block_tree(BlockTreeShape::default(), seed);
        let n = bg.graph().node_count();
        let terminals = random_terminals(bg.graph(), None, 3.min(n), seed ^ 0xA5A5);

        let solver = Solver::new(bg.clone());
        let sol = solver
            .solve_steiner(&terminals)
            .expect("block tree is connected");
        assert_eq!(
            sol.strategy,
            SteinerStrategy::Algorithm2,
            "block trees are (6,2)-chordal, seed {seed}"
        );
        assert!(sol.tree.is_valid_tree(bg.graph()));
        assert!(terminals.is_subset_of(&sol.tree.nodes));

        // Differential: Algorithm 2 claims optimality (Theorem 5);
        // Dreyfus–Wagner is the independent referee.
        assert_eq!(
            Some(sol.cost),
            exact_cost(&bg, &terminals),
            "Algorithm 2 must match the exact DP, seed {seed}"
        );

        // Metamorphic: the cost is invariant under relabeling.
        for round in 0..3u64 {
            let perm = random_permutation(n, seed * 31 + round);
            let (pg, pt) = relabel(&bg, &terminals, &perm);
            let psol = Solver::new(pg.clone())
                .solve_steiner(&pt)
                .expect("isomorphic image stays connected");
            assert_eq!(
                psol.cost, sol.cost,
                "relabeling changed the cost, seed {seed} round {round}"
            );
            assert_eq!(psol.strategy, SteinerStrategy::Algorithm2);
            assert!(psol.tree.is_valid_tree(pg.graph()));
            assert!(pt.is_subset_of(&psol.tree.nodes));
        }
    }
}

// ---------------------------------------------------------------------
// In-class: Algorithm 1 (α-acyclic incidence graphs, pseudo-Steiner V₂)
// ---------------------------------------------------------------------

#[test]
fn algorithm1_v2_cost_invariant_under_relabeling_and_equals_weighted_exact() {
    for seed in 0..12u64 {
        let shape = JoinTreeShape {
            num_edges: 5,
            max_shared: 2,
            max_fresh: 3,
        };
        let (_h, bg) = random_alpha_acyclic(shape, seed);
        let n = bg.graph().node_count();
        let v1 = bg.v1_set();
        let k = 3.min(v1.len());
        let terminals = random_terminals(bg.graph(), Some(&v1), k, seed ^ 0x5A5A);

        let solver = Solver::new(bg.clone());
        let sol = solver
            .solve_pseudo(&terminals, Side::V2)
            .expect("incidence graph is connected");
        assert_eq!(
            sol.strategy,
            SteinerStrategy::Algorithm1,
            "join-tree graphs are α-acyclic, seed {seed}"
        );
        assert!(sol.tree.is_valid_tree(bg.graph()));
        assert!(terminals.is_subset_of(&sol.tree.nodes));

        // Differential: Theorems 3–4 claim V₂-minimality; the weighted
        // DP (V₂ nodes cost 1, V₁ nodes cost 0) referees the claim.
        assert_eq!(
            Some(sol.cost),
            exact_v2_cost(&bg, &terminals),
            "Algorithm 1 must match the V₂-weighted exact DP, seed {seed}"
        );

        for round in 0..3u64 {
            let perm = random_permutation(n, seed * 37 + round);
            let (pg, pt) = relabel(&bg, &terminals, &perm);
            let psol = Solver::new(pg)
                .solve_pseudo(&pt, Side::V2)
                .expect("isomorphic image stays connected");
            assert_eq!(
                psol.cost, sol.cost,
                "relabeling changed the V₂ cost, seed {seed} round {round}"
            );
            assert_eq!(psol.strategy, SteinerStrategy::Algorithm1);
        }
    }
}

// ---------------------------------------------------------------------
// Off-class: the heuristic route never beats the exact optimum
// ---------------------------------------------------------------------

/// One cross-check of an arbitrary bipartite instance against the exact
/// DP: optimal routes must equal it, the heuristic must not beat it.
/// Returns `false` when the instance is infeasible (skipped).
fn check_against_exact(bg: &BipartiteGraph, terminals: &NodeSet) -> bool {
    let Some(exact) = exact_cost(bg, terminals) else {
        // Terminals disconnected: the solver must agree.
        let err = Solver::new(bg.clone()).solve_steiner(terminals);
        assert!(
            matches!(err, Err(SolveError::Disconnected { .. })),
            "exact says disconnected, solver says {err:?}"
        );
        return false;
    };
    let solver = Solver::new(bg.clone());
    let sol = solver.solve_steiner(terminals).expect("exact found a tree");
    assert!(sol.tree.is_valid_tree(bg.graph()));
    assert!(terminals.is_subset_of(&sol.tree.nodes));
    if sol.strategy.optimal() && sol.degraded.is_none() {
        assert_eq!(sol.cost, exact, "optimal route must match the DP");
    } else {
        assert!(
            sol.cost >= exact,
            "a heuristic cannot beat the optimum: {} < {exact}",
            sol.cost
        );
    }
    true
}

#[test]
fn off_class_heuristic_route_never_beats_exact() {
    // Force the heuristic on off-class graphs by disallowing exact
    // routing, so the KMB ≥ exact inequality is actually exercised.
    let config = SolverConfig {
        max_exact_terminals: 0,
        ..SolverConfig::default()
    };
    let mut checked = 0u32;
    for seed in 0..40u64 {
        let bg = random_bipartite(5, 5, 0.6, seed);
        let n = bg.graph().node_count();
        let terminals = random_terminals(bg.graph(), None, 3.min(n), seed ^ 0xC3C3);
        let Some(exact) = exact_cost(&bg, &terminals) else {
            continue;
        };
        let sol = match Solver::with_config(bg.clone(), config).solve_steiner(&terminals) {
            Ok(sol) => sol,
            Err(SolveError::Disconnected { .. }) => continue,
            Err(e) => panic!("unexpected solve error: {e:?}"),
        };
        assert!(sol.tree.is_valid_tree(bg.graph()));
        assert!(terminals.is_subset_of(&sol.tree.nodes));
        if sol.strategy == SteinerStrategy::Heuristic {
            checked += 1;
            assert!(
                sol.cost >= exact,
                "KMB beat the exact optimum: {} < {exact}, seed {seed}",
                sol.cost
            );
        } else {
            // In-class by luck: the optimal route must equal the DP.
            assert_eq!(sol.cost, exact, "optimal route off by seed {seed}");
        }
    }
    assert!(
        checked >= 3,
        "too few heuristic-routed instances: {checked}"
    );
}

// ---------------------------------------------------------------------
// Seeded proptest sweep: the same oracles over a wider random space
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any bipartite instance: the auto-routing solver is refereed by
    /// the exact DP (equality on optimal routes, ≥ on the heuristic).
    #[test]
    fn solver_vs_exact_differential(
        seed in 0u64..1 << 48,
        n1 in 2usize..=4,
        n2 in 2usize..=4,
        k in 2usize..=3,
    ) {
        let bg = random_bipartite(n1, n2, 0.5, seed);
        let terminals =
            random_terminals(bg.graph(), None, k.min(n1 + n2), seed ^ 0xF0F0);
        check_against_exact(&bg, &terminals);
    }

    /// In-class instances stay in class and stay optimal under random
    /// relabeling (Algorithm 2's answer is a graph property).
    #[test]
    fn algorithm2_relabeling_proptest(
        seed in 0u64..1 << 48,
        perm_seed in 0u64..1 << 48,
    ) {
        let shape = BlockTreeShape { blocks: 4, max_block: 3 };
        let bg = random_six_two_block_tree(shape, seed);
        let n = bg.graph().node_count();
        let terminals = random_terminals(bg.graph(), None, 3.min(n), seed ^ 0x1111);
        let sol = Solver::new(bg.clone())
            .solve_steiner(&terminals)
            .expect("block tree is connected");
        prop_assert_eq!(sol.strategy, SteinerStrategy::Algorithm2);

        let perm = random_permutation(n, perm_seed);
        let (pg, pt) = relabel(&bg, &terminals, &perm);
        let psol = Solver::new(pg)
            .solve_steiner(&pt)
            .expect("isomorphic image stays connected");
        // The permuted graph classifies identically and costs the same.
        prop_assert_eq!(psol.strategy, SteinerStrategy::Algorithm2);
        prop_assert_eq!(psol.cost, sol.cost);
    }
}
