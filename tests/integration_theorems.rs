//! Cross-crate validation of the paper's theorems on *generated*
//! workloads — the test-sized companions of the benchmark experiments.

use mcc::prelude::*;
use mcc_gen::{
    random_alpha_acyclic, random_six_two_block_tree, random_terminals, random_x3c,
    random_x3c_planted,
};
use mcc_graph::NodeId;
use mcc_reductions::Theorem2Gadget;
use mcc_steiner::{
    algorithm1, algorithm2_with_order, minimum_cover_bruteforce, pseudo_steiner,
    side_minimum_cover_bruteforce, steiner_exact, PseudoSide,
};

/// Theorem 2 end-to-end: the X3C instance is solvable **iff** the gadget
/// admits a Steiner tree with at most `4q + 1` nodes.
#[test]
fn theorem2_reduction_equivalence() {
    // Planted (solvable) instances.
    for seed in 0..4 {
        let inst = random_x3c_planted(2, 3, seed);
        let gadget = Theorem2Gadget::build(inst);
        let sol = steiner_exact(&SteinerInstance::new(
            gadget.graph.graph().clone(),
            gadget.terminals(),
        ))
        .expect("hub connects all terminals");
        assert_eq!(sol.cost as usize, gadget.threshold(), "seed {seed}");
        assert!(gadget.extract_cover(&sol.tree).is_some(), "seed {seed}");
    }
    // Random instances: compare against the brute-force X3C solver. An
    // element covered by no triple leaves its gadget node isolated, so
    // the Steiner instance may be outright infeasible — which still
    // correctly encodes "unsolvable".
    for seed in 0..8 {
        let inst = random_x3c(2, 4, seed);
        let solvable = inst.solve_bruteforce().is_some();
        let gadget = Theorem2Gadget::build(inst);
        let within_threshold = steiner_exact(&SteinerInstance::new(
            gadget.graph.graph().clone(),
            gadget.terminals(),
        ))
        .is_some_and(|sol| sol.cost as usize <= gadget.threshold());
        assert_eq!(
            within_threshold, solvable,
            "seed {seed}: Steiner <= 4q+1 must equal X3C solvability"
        );
    }
}

/// The Theorem 2 gadget is always on Algorithm 1's class, and Algorithm 1
/// solves the *pseudo*-Steiner problem there even though full Steiner is
/// NP-hard — the paper's tractability frontier in one test.
#[test]
fn theorem2_gadget_is_algorithm1_friendly() {
    for seed in 0..4 {
        let gadget = Theorem2Gadget::build(random_x3c_planted(2, 2, seed));
        let terms = gadget.terminals();
        let out = algorithm1(&gadget.graph, &terms).expect("gadget is alpha-acyclic");
        // All terminals are V2; the V2-cost is forced to 3q + 1.
        assert_eq!(out.v2_cost, 3 * gadget.instance.q + 1, "seed {seed}");
        let bf =
            side_minimum_cover_bruteforce(gadget.graph.graph(), &terms, &gadget.graph.v2_set())
                .unwrap();
        assert_eq!(
            bf.intersection(&gadget.graph.v2_set()).len(),
            out.v2_cost,
            "seed {seed}"
        );
    }
}

/// Theorems 3–4 on generated α-acyclic schemas: Algorithm 1 matches the
/// exhaustive V₂-minimum.
#[test]
fn theorem3_algorithm1_on_generated_schemas() {
    for seed in 0..6 {
        let shape = mcc_gen::join_tree::JoinTreeShape {
            num_edges: 4,
            max_shared: 2,
            max_fresh: 2,
        };
        let (_, bg) = random_alpha_acyclic(shape, seed);
        if bg.graph().node_count() > 18 {
            continue; // keep brute force cheap
        }
        let terminals = random_terminals(bg.graph(), Some(&bg.v1_set()), 2, seed);
        match algorithm1(&bg, &terminals) {
            Ok(out) => {
                let v2 = bg.v2_set();
                let bf = side_minimum_cover_bruteforce(bg.graph(), &terminals, &v2)
                    .expect("algorithm found a tree, so feasible");
                assert_eq!(out.v2_cost, bf.intersection(&v2).len(), "seed {seed}");
            }
            Err(mcc_steiner::Algorithm1Error::Infeasible) => {
                assert!(
                    minimum_cover_bruteforce(bg.graph(), &terminals).is_none(),
                    "seed {seed}"
                );
            }
            Err(e) => panic!("generated schema must be alpha-acyclic: {e} (seed {seed})"),
        }
    }
}

/// Lemma 1: the ordering Algorithm 1 derives (reversed Tarjan–Yannakakis
/// running-intersection order) satisfies both of Lemma 1's properties,
/// checked literally on connected generated schemas.
#[test]
fn lemma1_ordering_properties_hold() {
    for seed in 0..8 {
        let (_, bg) = random_alpha_acyclic(Default::default(), seed);
        let terminals = random_terminals(bg.graph(), Some(&bg.v1_set()), 2, seed + 77);
        match algorithm1(&bg, &terminals) {
            Ok(out) => assert!(
                mcc_steiner::verify_lemma1_ordering(&bg, &out.ordering),
                "seed {seed}: Lemma 1 properties violated"
            ),
            Err(mcc_steiner::Algorithm1Error::Infeasible) => {}
            Err(e) => panic!("generated schema must be on-class: {e}"),
        }
    }
}

/// Theorem 5 + Corollary 5 on generated (6,2)-chordal graphs: Algorithm 2
/// is optimal under many sampled orderings.
#[test]
fn theorem5_algorithm2_under_random_orderings() {
    for seed in 0..6 {
        let shape = mcc_gen::block_tree::BlockTreeShape {
            blocks: 3,
            max_block: 3,
        };
        let bg = random_six_two_block_tree(shape, seed);
        let g = bg.graph();
        if g.node_count() > 18 {
            continue;
        }
        let terminals = random_terminals(g, None, 3, seed * 7 + 1);
        let Some(min) = minimum_cover_bruteforce(g, &terminals) else {
            continue;
        };
        // Sample orderings deterministically: rotations of the id order.
        let n = g.node_count();
        for rot in 0..n.min(6) {
            let order: Vec<NodeId> = (0..n).map(|i| NodeId::from_index((i + rot) % n)).collect();
            let tree = algorithm2_with_order(g, &terminals, &order).expect("feasible");
            assert_eq!(
                tree.node_cost(),
                min.len(),
                "seed {seed} rotation {rot}: Corollary 5 violated"
            );
        }
    }
}

/// Corollary 4 on generated β-acyclic (interval) schemas: pseudo-Steiner
/// is polynomial **on both sides**.
#[test]
fn corollary4_both_sides_on_interval_schemas() {
    for seed in 0..6 {
        let shape = mcc_gen::interval::IntervalShape {
            nodes: 6,
            edges: 4,
            max_len: 3,
        };
        let (_, bg) = mcc_gen::random_interval_hypergraph(shape, seed);
        let g = bg.graph();
        let terminals = random_terminals(g, None, 2, seed + 100);
        for side in [PseudoSide::V1, PseudoSide::V2] {
            match pseudo_steiner(&bg, &terminals, side) {
                Ok(sol) => {
                    let side_set = match side {
                        PseudoSide::V1 => bg.v1_set(),
                        PseudoSide::V2 => bg.v2_set(),
                    };
                    let bf =
                        side_minimum_cover_bruteforce(g, &terminals, &side_set).expect("feasible");
                    assert_eq!(
                        sol.side_cost,
                        bf.intersection(&side_set).len(),
                        "seed {seed} side {side:?}"
                    );
                }
                Err(mcc_steiner::Algorithm1Error::Infeasible) => {}
                Err(e) => {
                    panic!("interval schemas are beta-acyclic, Corollary 4 applies: {e}")
                }
            }
        }
    }
}

/// The full solver agrees with itself across strategies: on (6,2)-chordal
/// inputs Algorithm 2, the exact solver, and the KMB heuristic bound each
/// other exactly as the theory predicts.
#[test]
fn strategies_are_consistent_on_six_two_graphs() {
    for seed in 0..5 {
        let bg = random_six_two_block_tree(
            mcc_gen::block_tree::BlockTreeShape {
                blocks: 3,
                max_block: 3,
            },
            seed,
        );
        let g = bg.graph();
        let terminals = random_terminals(g, None, 3, seed + 9);
        let solver = Solver::new(bg.clone());
        let auto = solver
            .solve_steiner(&terminals)
            .expect("block trees are connected");
        assert_eq!(auto.strategy, SteinerStrategy::Algorithm2);
        let exact =
            steiner_exact(&SteinerInstance::new(g.clone(), terminals.clone())).expect("connected");
        assert_eq!(auto.cost as u64, exact.cost, "seed {seed}");
        let kmb = mcc_steiner::steiner_kmb(g, &terminals).expect("connected");
        assert!(kmb.node_cost() >= auto.cost);
        assert!(kmb.node_cost() as u64 <= 2 * exact.cost);
    }
}
